// Package baseline implements the comparison points of §1.1/§1.2 and
// §3.4.1:
//
//   - Engine: database-level recovery, the "one very large partition"
//     special case — checkpoints stream the entire memory-resident
//     database to disk (à la Hagmann [Hagmann 86]) and restart reloads
//     the entire database and processes the whole log before any
//     transaction can run;
//   - SyncWAL: a disk-synchronised write-ahead log in the style of
//     Lindsay et al. (method 4 of §1.1), where commit waits for the log
//     force; used to quantify what the stable-memory instant commit
//     buys.
//
// Both share the simulated hardware and cost accounting, so their
// numbers are directly comparable with the partition-level design in
// package core.
package baseline

import (
	"fmt"

	"mmdb/internal/addr"
	"mmdb/internal/cost"
	"mmdb/internal/mm"
	"mmdb/internal/simdisk"
	"mmdb/internal/wal"
)

// Engine is a database-level-recovery storage engine over the same
// partitioned memory organisation. It logs committed operations to a
// single global log stream and checkpoints the whole database at once.
type Engine struct {
	store    *mm.Store
	logDisk  *simdisk.DuplexLog
	ckptDisk *simdisk.CheckpointDisk
	meter    *cost.Meter
	pageSize int

	cur      []byte        // current global log page
	logPages []simdisk.LSN // pages since the last full checkpoint

	// Last full-database checkpoint: image tracks in partition order.
	ckptParts  []addr.PartitionID
	ckptTracks []simdisk.TrackLoc
	nextTrack  simdisk.TrackLoc
}

// New creates a database-level engine over fresh simulated hardware
// components. partSize is the partition size used by its store.
func New(partSize, logPageSize, ckptTracks int, disk simdisk.Params, meter *cost.Meter) *Engine {
	return &Engine{
		store:    mm.NewStore(partSize),
		logDisk:  simdisk.NewDuplexLog(disk, meter),
		ckptDisk: simdisk.NewCheckpointDisk(ckptTracks, disk, meter),
		meter:    meter,
		pageSize: logPageSize,
	}
}

// Store returns the engine's memory manager.
func (e *Engine) Store() *mm.Store { return e.store }

// Meter returns the engine's cost meter.
func (e *Engine) Meter() *cost.Meter { return e.meter }

// Commit durably logs one committed transaction's records, appended to
// the single global log stream in commit order.
func (e *Engine) Commit(records []wal.Record) error {
	for i := range records {
		enc := records[i].Encode(nil)
		if len(e.cur)+len(enc) > e.pageSize && len(e.cur) > 0 {
			if err := e.flushLogPage(); err != nil {
				return err
			}
		}
		e.cur = append(e.cur, enc...)
	}
	return nil
}

func (e *Engine) flushLogPage() error {
	if len(e.cur) == 0 {
		return nil
	}
	lsn, err := e.logDisk.Append(e.cur)
	if err != nil {
		return err
	}
	e.logPages = append(e.logPages, lsn)
	e.cur = nil
	return nil
}

// LogPages returns the number of log pages accumulated since the last
// checkpoint (plus the partial current page).
func (e *Engine) LogPages() int {
	n := len(e.logPages)
	if len(e.cur) > 0 {
		n++
	}
	return n
}

// Checkpoint streams the entire memory-resident database to the
// checkpoint disk — Hagmann's scheme and the degenerate case of
// partition-level checkpointing with one huge partition (§3.4.1). The
// caller must present a quiescent (transaction-consistent) database.
func (e *Engine) Checkpoint() error {
	if err := e.flushLogPage(); err != nil {
		return err
	}
	pids := e.store.ResidentIDs()
	parts := make([]addr.PartitionID, 0, len(pids))
	tracks := make([]simdisk.TrackLoc, 0, len(pids))
	for _, pid := range pids {
		p, err := e.store.Partition(pid)
		if err != nil {
			return err
		}
		t := e.nextTrack
		e.nextTrack = (e.nextTrack + 1) % simdisk.TrackLoc(e.ckptDisk.Tracks())
		if err := e.ckptDisk.WriteTrack(t, p.Snapshot()); err != nil {
			return err
		}
		parts = append(parts, pid)
		tracks = append(tracks, t)
	}
	e.ckptParts = parts
	e.ckptTracks = tracks
	// The whole log is superseded by the full image.
	if len(e.logPages) > 0 {
		e.logDisk.Drop(e.logPages[len(e.logPages)-1])
	}
	e.logPages = nil
	return nil
}

// Recover performs database-level restart: reload every partition of
// the checkpoint image and process the entire log, after which — and
// only after which — transaction processing may resume. It returns the
// recovered store.
func (e *Engine) Recover(partSize int) (*mm.Store, error) {
	store := mm.NewStore(partSize)
	byPID := make(map[addr.PartitionID]*mm.Partition, len(e.ckptParts))
	for i, pid := range e.ckptParts {
		img, err := e.ckptDisk.ReadTrack(e.ckptTracks[i])
		if err != nil {
			return nil, fmt.Errorf("baseline: image of %v: %w", pid, err)
		}
		p, err := mm.FromImage(pid, img)
		if err != nil {
			return nil, fmt.Errorf("baseline: image of %v: %w", pid, err)
		}
		store.EnsureSegment(pid.Segment)
		store.Install(p)
		byPID[pid] = p
	}
	apply := func(buf []byte) error {
		recs, err := wal.DecodeAll(buf)
		if err != nil {
			return err
		}
		for i := range recs {
			r := &recs[i]
			p := byPID[r.PID]
			if p == nil {
				store.EnsureSegment(r.PID.Segment)
				np, err := store.AllocPartitionAt(r.PID)
				if err != nil {
					return err
				}
				p = np
				byPID[r.PID] = p
			}
			if err := Apply(p, r); err != nil {
				return err
			}
		}
		return nil
	}
	for _, lsn := range e.logPages {
		page, err := e.logDisk.Read(lsn)
		if err != nil {
			return nil, err
		}
		if err := apply(page); err != nil {
			return nil, err
		}
	}
	if len(e.cur) > 0 {
		// The partial page was in (stable) memory at the crash.
		if err := apply(e.cur); err != nil {
			return nil, err
		}
	}
	e.store = store
	return store, nil
}

// Apply applies one REDO record to a partition with the same lenient
// semantics as the partition-level recovery component.
func Apply(p *mm.Partition, r *wal.Record) error {
	switch r.Tag {
	case wal.TagRelInsert, wal.TagIdxInsert:
		if _, err := p.Read(r.Slot); err == nil {
			return p.Update(r.Slot, r.Data)
		}
		return p.InsertAt(r.Slot, r.Data)
	case wal.TagRelUpdate, wal.TagIdxUpdate:
		if _, err := p.Read(r.Slot); err != nil {
			return p.InsertAt(r.Slot, r.Data)
		}
		return p.Update(r.Slot, r.Data)
	case wal.TagRelDelete, wal.TagIdxDelete:
		_ = p.Delete(r.Slot)
		return nil
	case wal.TagRelWrite, wal.TagIdxWrite:
		cur, err := p.Read(r.Slot)
		if err != nil || int(r.Off)+len(r.Data) > len(cur) {
			return nil
		}
		return p.WriteAt(r.Slot, int(r.Off), r.Data)
	case wal.TagPartAlloc, wal.TagPartFree:
		return nil
	default:
		return fmt.Errorf("baseline: unknown tag %v", r.Tag)
	}
}

// SyncWAL models the disk-force commit path of a conventional
// write-ahead-log scheme (Lindsay et al., §1.1 method 4): a committing
// transaction waits until its log records reach the disk. Group commit
// batches the force across waiting transactions.
type SyncWAL struct {
	disk      *simdisk.LogDisk
	params    simdisk.Params
	meter     *cost.Meter
	pageSize  int
	buf       []byte
	groupSize int // transactions per force (1 = no group commit)
	pending   int
	// ForcesIssued counts physical log forces.
	ForcesIssued int64
}

// NewSyncWAL creates the baseline committer. groupSize of 1 disables
// group commit.
func NewSyncWAL(pageSize, groupSize int, params simdisk.Params, meter *cost.Meter) *SyncWAL {
	if groupSize < 1 {
		groupSize = 1
	}
	return &SyncWAL{
		disk:      simdisk.NewLogDisk(params, meter),
		params:    params,
		meter:     meter,
		pageSize:  pageSize,
		groupSize: groupSize,
	}
}

// Commit appends one transaction's records and, at the group boundary,
// forces the log: the caller's simulated commit latency is the returned
// number of microseconds.
func (w *SyncWAL) Commit(records []wal.Record) (int64, error) {
	for i := range records {
		w.buf = append(w.buf, records[i].Encode(nil)...)
	}
	w.pending++
	if w.pending < w.groupSize {
		// Pre-commit: locks released, but the transaction officially
		// commits when the group's log force completes; we charge no
		// latency here (the force is attributed to the group).
		return 0, nil
	}
	w.pending = 0
	latency := int64(0)
	for len(w.buf) > 0 {
		n := w.pageSize
		if n > len(w.buf) {
			n = len(w.buf)
		}
		if _, err := w.disk.Append(w.buf[:n]); err != nil {
			return 0, err
		}
		// Commit latency: rotation to the write slot plus transfer.
		latency += w.params.RotateMicros + int64(n)*1e6/w.params.BytesPerSec
		w.buf = w.buf[n:]
		w.ForcesIssued++
	}
	return latency, nil
}
