package baseline

import (
	"bytes"
	"fmt"
	"testing"

	"mmdb/internal/addr"
	"mmdb/internal/cost"
	"mmdb/internal/mm"
	"mmdb/internal/simdisk"
	"mmdb/internal/wal"
)

func newEngine() *Engine {
	return New(4096, 1024, 1024, simdisk.DefaultParams(), &cost.Meter{})
}

// run applies records to the live store and logs them as one committed
// transaction.
func run(t *testing.T, e *Engine, recs []wal.Record) {
	t.Helper()
	for i := range recs {
		r := &recs[i]
		e.Store().EnsureSegment(r.PID.Segment)
		p, err := e.Store().Partition(r.PID)
		if err != nil {
			p2, err2 := e.Store().AllocPartitionAt(r.PID)
			if err2 != nil {
				t.Fatal(err, err2)
			}
			p = p2
		}
		if err := Apply(p, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(recs); err != nil {
		t.Fatal(err)
	}
}

func ins(pid addr.PartitionID, slot addr.Slot, data string) wal.Record {
	return wal.Record{Tag: wal.TagRelInsert, Txn: 1, PID: pid, Slot: slot, Data: []byte(data)}
}

func upd(pid addr.PartitionID, slot addr.Slot, data string) wal.Record {
	return wal.Record{Tag: wal.TagRelUpdate, Txn: 1, PID: pid, Slot: slot, Data: []byte(data)}
}

func del(pid addr.PartitionID, slot addr.Slot) wal.Record {
	return wal.Record{Tag: wal.TagRelDelete, Txn: 1, PID: pid, Slot: slot}
}

func TestRecoverFromLogOnly(t *testing.T) {
	e := newEngine()
	pid := addr.PartitionID{Segment: 2, Part: 0}
	run(t, e, []wal.Record{ins(pid, 0, "a"), ins(pid, 1, "b")})
	run(t, e, []wal.Record{upd(pid, 0, "A"), del(pid, 1)})
	store, err := e.Recover(4096)
	if err != nil {
		t.Fatal(err)
	}
	p, err := store.Partition(pid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(0)
	if err != nil || !bytes.Equal(got, []byte("A")) {
		t.Fatalf("slot 0 = %q, %v", got, err)
	}
	if _, err := p.Read(1); err == nil {
		t.Fatal("deleted slot present")
	}
}

func TestRecoverFromCheckpointPlusLog(t *testing.T) {
	e := newEngine()
	pid := addr.PartitionID{Segment: 2, Part: 0}
	run(t, e, []wal.Record{ins(pid, 0, "v1")})
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if e.LogPages() != 0 {
		t.Fatalf("log not truncated: %d pages", e.LogPages())
	}
	run(t, e, []wal.Record{upd(pid, 0, "v2")})
	store, err := e.Recover(4096)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := store.Partition(pid)
	got, err := p.Read(0)
	if err != nil || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("slot 0 = %q, %v", got, err)
	}
}

func TestCheckpointStreamsWholeDatabase(t *testing.T) {
	e := newEngine()
	meter := e.Meter()
	// 8 partitions of data.
	for part := 0; part < 8; part++ {
		pid := addr.PartitionID{Segment: 2, Part: addr.PartitionNum(part)}
		run(t, e, []wal.Record{ins(pid, 0, fmt.Sprintf("p%d", part))})
	}
	before := meter.Snapshot()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d := meter.Snapshot().Sub(before)
	if d.CkptDiskMicros == 0 {
		t.Fatal("checkpoint charged no disk time")
	}
	// Recovery reloads all 8 partitions even if only one is wanted:
	// that is the point of the comparison.
	before = meter.Snapshot()
	store, err := e.Recover(4096)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(store.ResidentIDs()); got != 8 {
		t.Fatalf("recovered %d partitions", got)
	}
	d = meter.Snapshot().Sub(before)
	if d.CkptDiskMicros == 0 {
		t.Fatal("recovery charged no disk time")
	}
}

func TestRecoveryLargerThanPartitionLevelShape(t *testing.T) {
	// The headline §3.4.1 claim in miniature: database-level recovery
	// cost grows with database size even when the working set is one
	// partition.
	sizes := []int{4, 16, 64}
	var prev int64
	for _, n := range sizes {
		e := newEngine()
		for part := 0; part < n; part++ {
			pid := addr.PartitionID{Segment: 2, Part: addr.PartitionNum(part)}
			run(t, e, []wal.Record{ins(pid, 0, "x")})
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		before := e.Meter().Snapshot()
		if _, err := e.Recover(4096); err != nil {
			t.Fatal(err)
		}
		d := e.Meter().Snapshot().Sub(before)
		if d.CkptDiskMicros <= prev {
			t.Fatalf("recovery time did not grow with db size: %d then %d", prev, d.CkptDiskMicros)
		}
		prev = d.CkptDiskMicros
	}
}

func TestSyncWALChargesCommitLatency(t *testing.T) {
	m := &cost.Meter{}
	w := NewSyncWAL(4096, 1, simdisk.DefaultParams(), m)
	recs := []wal.Record{ins(addr.PartitionID{Segment: 2, Part: 0}, 0, "x")}
	lat, err := w.Commit(recs)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("sync commit reported zero latency")
	}
	if w.ForcesIssued != 1 {
		t.Fatalf("forces = %d", w.ForcesIssued)
	}
}

func TestSyncWALGroupCommitAmortises(t *testing.T) {
	m := &cost.Meter{}
	const group = 8
	w := NewSyncWAL(4096, group, simdisk.DefaultParams(), m)
	var total int64
	recs := []wal.Record{ins(addr.PartitionID{Segment: 2, Part: 0}, 0, "x")}
	for i := 0; i < 64; i++ {
		lat, err := w.Commit(recs)
		if err != nil {
			t.Fatal(err)
		}
		total += lat
	}
	if w.ForcesIssued == 0 {
		t.Fatal("no forces issued")
	}
	// With group commit, far fewer forces than transactions.
	if w.ForcesIssued > 64/group+1 {
		t.Fatalf("forces = %d, want <= %d", w.ForcesIssued, 64/group+1)
	}
	// Per-transaction latency far below solo forcing.
	solo := NewSyncWAL(4096, 1, simdisk.DefaultParams(), &cost.Meter{})
	soloLat, _ := solo.Commit(recs)
	if total/64 >= soloLat {
		t.Fatalf("group commit per-txn %dus !< solo %dus", total/64, soloLat)
	}
}

func TestPartialLogPageRecovered(t *testing.T) {
	e := newEngine()
	pid := addr.PartitionID{Segment: 2, Part: 0}
	run(t, e, []wal.Record{ins(pid, 0, "only")}) // stays in e.cur
	if len(e.logPages) != 0 {
		t.Fatal("tiny record flushed a page unexpectedly")
	}
	store, err := e.Recover(4096)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := store.Partition(pid)
	got, err := p.Read(0)
	if err != nil || !bytes.Equal(got, []byte("only")) {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestApplyLenient(t *testing.T) {
	pid := addr.PartitionID{Segment: 2, Part: 0}
	p := mm.NewPartition(pid, 4096)
	// Delete of a missing slot: no-op.
	r := del(pid, 3)
	if err := Apply(p, &r); err != nil {
		t.Fatal(err)
	}
	// Update of a missing slot: creates it.
	r = upd(pid, 2, "made")
	if err := Apply(p, &r); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(2)
	if err != nil || !bytes.Equal(got, []byte("made")) {
		t.Fatalf("got %q, %v", got, err)
	}
	// Insert onto an occupied slot: overwrite.
	r = ins(pid, 2, "over")
	if err := Apply(p, &r); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Read(2)
	if !bytes.Equal(got, []byte("over")) {
		t.Fatalf("got %q", got)
	}
}
