package mm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mmdb/internal/addr"
)

// ErrNotResident is returned when a partition is neither in memory nor
// recoverable via the resolve hook — e.g. after a crash before recovery
// has been wired up.
var ErrNotResident = errors.New("mm: partition not memory-resident")

// ResolveFunc recovers a missing partition on demand (§2.5: transactions
// "generate a restore process for those partitions that are not yet
// recovered"). It returns the recovered partition or an error.
type ResolveFunc func(id addr.PartitionID) (*Partition, error)

// Toucher receives one notification per partition access — the
// heat tracker's hot-path seam. Implementations must be cheap and safe
// for concurrent use; Partition calls it on every demand, resident or
// not.
type Toucher interface {
	Touch(id addr.PartitionID)
}

// Store is the volatile memory manager: the set of segments making up
// the primary, memory-resident copy of the database. It is discarded
// wholesale by a crash.
type Store struct {
	partSize int

	mu      sync.RWMutex
	segs    map[addr.SegmentID]*segment
	nextSeg addr.SegmentID
	resolve ResolveFunc
	heat    Toucher

	// resolveMu guards inflight, the per-partition recovery coalescing
	// map: distinct partitions recover concurrently (the parallel
	// background sweep depends on it), while all demanders of one
	// partition — foreground transactions and sweep workers alike —
	// share a single recovery transaction (§2.5).
	resolveMu sync.Mutex
	inflight  map[addr.PartitionID]*inflightRecovery
}

// inflightRecovery is one in-progress recovery transaction; done closes
// after p/err are set and the partition (on success) is installed.
type inflightRecovery struct {
	done chan struct{}
	p    *Partition
	err  error
}

type segment struct {
	id       addr.SegmentID
	parts    map[addr.PartitionNum]*Partition
	nextPart addr.PartitionNum
}

// NewStore creates an empty store whose partitions are partSize bytes.
func NewStore(partSize int) *Store {
	return &Store{
		partSize: partSize,
		segs:     make(map[addr.SegmentID]*segment),
		nextSeg:  addr.FirstUserSegment,
		inflight: make(map[addr.PartitionID]*inflightRecovery),
	}
}

// PartitionSize returns the configured partition size in bytes.
func (st *Store) PartitionSize() int { return st.partSize }

// SetResolve installs the on-demand recovery hook.
func (st *Store) SetResolve(fn ResolveFunc) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.resolve = fn
}

// SetHeat installs the access-heat sink consulted on every Partition
// demand. nil disables tracking.
func (st *Store) SetHeat(h Toucher) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.heat = h
}

// CreateSegment allocates a fresh segment ID for a new database object.
func (st *Store) CreateSegment() addr.SegmentID {
	st.mu.Lock()
	defer st.mu.Unlock()
	id := st.nextSeg
	st.nextSeg++
	st.segs[id] = &segment{id: id, parts: make(map[addr.PartitionNum]*Partition)}
	return id
}

// EnsureSegment registers a segment with a specific ID (catalog
// bootstrap and post-crash reconstruction).
func (st *Store) EnsureSegment(id addr.SegmentID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.segs[id]; !ok {
		st.segs[id] = &segment{id: id, parts: make(map[addr.PartitionNum]*Partition)}
	}
	if id >= st.nextSeg {
		st.nextSeg = id + 1
	}
}

// DropSegment discards a segment and its partitions.
func (st *Store) DropSegment(id addr.SegmentID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.segs, id)
}

// AllocPartition adds a new, empty partition to the segment and returns
// it. The partition is immediately resident.
func (st *Store) AllocPartition(seg addr.SegmentID) (*Partition, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		return nil, fmt.Errorf("mm: no such segment %d", seg)
	}
	id := addr.PartitionID{Segment: seg, Part: s.nextPart}
	s.nextPart++
	p := NewPartition(id, st.partSize)
	s.parts[id.Part] = p
	return p, nil
}

// AllocPartitionAt registers a partition with a specific number; used
// when REDO replay must recreate the exact partition numbering.
func (st *Store) AllocPartitionAt(id addr.PartitionID) (*Partition, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[id.Segment]
	if !ok {
		return nil, fmt.Errorf("mm: no such segment %d", id.Segment)
	}
	if _, dup := s.parts[id.Part]; dup {
		return nil, fmt.Errorf("mm: partition %v already exists", id)
	}
	p := NewPartition(id, st.partSize)
	s.parts[id.Part] = p
	if id.Part >= s.nextPart {
		s.nextPart = id.Part + 1
	}
	return p, nil
}

// Install places a recovered partition into its segment, replacing any
// prior copy.
func (st *Store) Install(p *Partition) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[p.id.Segment]
	if !ok {
		s = &segment{id: p.id.Segment, parts: make(map[addr.PartitionNum]*Partition)}
		st.segs[p.id.Segment] = s
		if p.id.Segment >= st.nextSeg {
			st.nextSeg = p.id.Segment + 1
		}
	}
	s.parts[p.id.Part] = p
	if p.id.Part >= s.nextPart {
		s.nextPart = p.id.Part + 1
	}
}

// Evict removes a partition from memory without touching stable copies;
// used by tests and by crash simulation of partial residency.
func (st *Store) Evict(id addr.PartitionID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok := st.segs[id.Segment]; ok {
		delete(s.parts, id.Part)
	}
}

// Resident reports whether the partition is currently in memory.
func (st *Store) Resident(id addr.PartitionID) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.segs[id.Segment]
	if !ok {
		return false
	}
	_, ok = s.parts[id.Part]
	return ok
}

// Partition returns the partition, triggering on-demand recovery through
// the resolve hook if it is not resident. Concurrent demanders of the
// same partition coalesce into one recovery transaction (§2.5); distinct
// partitions recover in parallel.
func (st *Store) Partition(id addr.PartitionID) (*Partition, error) {
	st.mu.RLock()
	s, ok := st.segs[id.Segment]
	var p *Partition
	if ok {
		p = s.parts[id.Part]
	}
	resolve := st.resolve
	heat := st.heat
	st.mu.RUnlock()
	if heat != nil {
		heat.Touch(id)
	}
	if p != nil {
		return p, nil
	}
	if resolve == nil {
		return nil, fmt.Errorf("%w: %v", ErrNotResident, id)
	}
	st.resolveMu.Lock()
	// Re-check residency under resolveMu: a recovery that completed
	// between the fast-path miss and here must not run again (two
	// installed copies would race, and the second would silently drop
	// updates applied to the first).
	if rp := st.residentPart(id); rp != nil {
		st.resolveMu.Unlock()
		return rp, nil
	}
	if f, ok := st.inflight[id]; ok {
		// Someone else is already recovering this partition: wait for
		// that single recovery transaction's outcome.
		st.resolveMu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		return f.p, nil
	}
	f := &inflightRecovery{done: make(chan struct{})}
	st.inflight[id] = f
	st.resolveMu.Unlock()

	f.p, f.err = resolve(id)
	if f.err == nil {
		st.Install(f.p)
	}
	// Install before removing the inflight entry, so every future
	// demander hits either the resident fast path or this entry — never
	// a gap that would start a second recovery of an installed
	// partition. Failed recoveries clear the entry so a later demand
	// can retry.
	st.resolveMu.Lock()
	delete(st.inflight, id)
	st.resolveMu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	return f.p, nil
}

// residentPart returns the resident partition or nil.
func (st *Store) residentPart(id addr.PartitionID) *Partition {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if s, ok := st.segs[id.Segment]; ok {
		return s.parts[id.Part]
	}
	return nil
}

// Partitions returns the resident partitions of a segment in partition
// order.
func (st *Store) Partitions(seg addr.SegmentID) []*Partition {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.segs[seg]
	if !ok {
		return nil
	}
	out := make([]*Partition, 0, len(s.parts))
	for _, p := range s.parts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Part < out[j].id.Part })
	return out
}

// ResidentIDs lists every resident partition across all segments.
func (st *Store) ResidentIDs() []addr.PartitionID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []addr.PartitionID
	for _, s := range st.segs {
		for pn := range s.parts {
			out = append(out, addr.PartitionID{Segment: s.id, Part: pn})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Read fetches the entity at a full address, resolving residency.
func (st *Store) Read(a addr.EntityAddr) ([]byte, error) {
	p, err := st.Partition(a.Partition())
	if err != nil {
		return nil, err
	}
	return p.Read(a.Slot)
}
