package mm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mmdb/internal/addr"
)

func TestStoreSegmentsAndPartitions(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	if seg < addr.FirstUserSegment {
		t.Fatalf("user segment id %d overlaps reserved range", seg)
	}
	p1, err := st.AllocPartition(seg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := st.AllocPartition(seg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID().Part == p2.ID().Part {
		t.Fatal("duplicate partition numbers")
	}
	if !st.Resident(p1.ID()) {
		t.Fatal("fresh partition not resident")
	}
	got, err := st.Partition(p1.ID())
	if err != nil || got != p1 {
		t.Fatalf("Partition() = %v, %v", got, err)
	}
	if n := len(st.Partitions(seg)); n != 2 {
		t.Fatalf("Partitions = %d", n)
	}
	if _, err := st.AllocPartition(999); err == nil {
		t.Fatal("alloc in missing segment succeeded")
	}
	st.DropSegment(seg)
	if st.Resident(p1.ID()) {
		t.Fatal("partition survives DropSegment")
	}
}

func TestStoreMissingPartitionWithoutResolver(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	_, err := st.Partition(addr.PartitionID{Segment: seg, Part: 7})
	if !errors.Is(err, ErrNotResident) {
		t.Fatalf("got %v, want ErrNotResident", err)
	}
}

func TestStoreResolveHook(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	id := addr.PartitionID{Segment: seg, Part: 3}
	var calls atomic.Int32
	st.SetResolve(func(got addr.PartitionID) (*Partition, error) {
		calls.Add(1)
		if got != id {
			t.Errorf("resolve called for %v", got)
		}
		return NewPartition(got, 1024), nil
	})
	p, err := st.Partition(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != id {
		t.Fatalf("resolved wrong partition %v", p.ID())
	}
	// Second access served from memory.
	if _, err := st.Partition(id); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("resolve called %d times", calls.Load())
	}
}

func TestStoreResolveConcurrentSingleRecovery(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	id := addr.PartitionID{Segment: seg, Part: 0}
	var calls atomic.Int32
	st.SetResolve(func(got addr.PartitionID) (*Partition, error) {
		calls.Add(1)
		return NewPartition(got, 1024), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Partition(id); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("concurrent demand produced %d recoveries, want 1", calls.Load())
	}
}

func TestStoreResolveError(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	boom := errors.New("boom")
	st.SetResolve(func(addr.PartitionID) (*Partition, error) { return nil, boom })
	_, err := st.Partition(addr.PartitionID{Segment: seg, Part: 0})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestAllocPartitionAtAndInstall(t *testing.T) {
	st := NewStore(1024)
	st.EnsureSegment(5)
	id := addr.PartitionID{Segment: 5, Part: 9}
	if _, err := st.AllocPartitionAt(id); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AllocPartitionAt(id); err == nil {
		t.Fatal("duplicate AllocPartitionAt succeeded")
	}
	// Subsequent AllocPartition continues past the explicit number.
	p, err := st.AllocPartition(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID().Part != 10 {
		t.Fatalf("next partition = %d, want 10", p.ID().Part)
	}
	// Install into an unknown segment creates it.
	np := NewPartition(addr.PartitionID{Segment: 77, Part: 2}, 1024)
	st.Install(np)
	if !st.Resident(np.ID()) {
		t.Fatal("installed partition not resident")
	}
	ids := st.ResidentIDs()
	if len(ids) != 3 {
		t.Fatalf("ResidentIDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if !ids[i-1].Less(ids[i]) {
			t.Fatalf("ResidentIDs not sorted: %v", ids)
		}
	}
}

func TestStoreRead(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	p, _ := st.AllocPartition(seg)
	s, _ := p.Insert([]byte("via store"))
	got, err := st.Read(addr.EntityAddr{Segment: seg, Part: p.ID().Part, Slot: s})
	if err != nil || string(got) != "via store" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if _, err := st.Read(addr.EntityAddr{Segment: seg, Part: 99, Slot: 0}); err == nil {
		t.Fatal("read of missing partition succeeded")
	}
}

func TestEvict(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	p, _ := st.AllocPartition(seg)
	st.Evict(p.ID())
	if st.Resident(p.ID()) {
		t.Fatal("evicted partition still resident")
	}
}

// Distinct partitions must recover concurrently: the parallel
// background sweep's speedup rests on per-partition (not global)
// recovery serialisation.
func TestStoreResolveDistinctPartitionsRunConcurrently(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	const parts = 4
	var active, peak atomic.Int32
	barrier := make(chan struct{})
	st.SetResolve(func(got addr.PartitionID) (*Partition, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		if n == parts {
			close(barrier) // all resolvers in flight at once
		}
		<-barrier
		active.Add(-1)
		return NewPartition(got, 1024), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			if _, err := st.Partition(addr.PartitionID{Segment: seg, Part: addr.PartitionNum(part)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if peak.Load() != parts {
		t.Fatalf("peak concurrent recoveries = %d, want %d", peak.Load(), parts)
	}
}

// A failed recovery must propagate its error to every coalesced waiter
// and clear the in-flight entry so a later demand can retry and
// succeed.
func TestStoreResolveErrorPropagatesAndRetries(t *testing.T) {
	st := NewStore(1024)
	seg := st.CreateSegment()
	id := addr.PartitionID{Segment: seg, Part: 0}
	boom := errors.New("boom")
	var calls atomic.Int32
	var failing atomic.Bool
	failing.Store(true)
	started := make(chan struct{})
	release := make(chan struct{})
	st.SetResolve(func(got addr.PartitionID) (*Partition, error) {
		if calls.Add(1) == 1 {
			close(started)
		}
		if failing.Load() {
			<-release
			return nil, boom
		}
		return NewPartition(got, 1024), nil
	})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := st.Partition(id)
			errs <- err
		}()
		if i == 0 {
			<-started // the rest pile onto the first, failing, recovery
		}
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("coalesced waiter got %v, want boom", err)
		}
	}
	// The failed recovery must have cleared its in-flight entry so a
	// later demand retries from scratch.
	failing.Store(false)
	if _, err := st.Partition(id); err != nil {
		t.Fatalf("retry after failed recovery: %v", err)
	}
	if !st.Resident(id) {
		t.Fatal("retried partition not resident")
	}
}
