package mm

import (
	"testing"

	"mmdb/internal/addr"
)

func BenchmarkPartitionInsertDelete(b *testing.B) {
	p := NewPartition(addr.PartitionID{Segment: 2}, 48<<10)
	data := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := p.Insert(data)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Delete(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot48KB(b *testing.B) {
	p := NewPartition(addr.PartitionID{Segment: 2}, 48<<10)
	for i := 0; i < 400; i++ {
		if _, err := p.Insert(make([]byte, 100)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(48 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Snapshot()
	}
}
