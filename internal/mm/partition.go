// Package mm implements the MM-DBMS memory organization of §2: every
// database object (relation, index, or system data structure) is stored
// in its own logical segment; segments are composed of fixed-size
// partitions, the unit of memory allocation, checkpoint transfer, log
// grouping, and post-crash recovery. Entities (tuples or index
// components) are stored in partitions and do not cross partition
// boundaries.
//
// A partition is a self-contained byte image: a header, a slot table
// growing up, and a string-space heap growing down from the end, managed
// as a heap with compaction. Keeping all state inside the byte image
// means a checkpoint is a memory-speed copy of the image and recovery is
// image + REDO replay, exactly as the paper requires.
package mm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mmdb/internal/addr"
)

// Binary layout constants for the partition image.
const (
	hdrNumSlots  = 0 // uint16: slot table size
	hdrFreeHead  = 2 // uint16: head of free-slot chain, noSlot if empty
	hdrHeapTop   = 4 // uint32: lowest used heap byte (heap grows down)
	hdrLiveBytes = 8 // uint32: live entity bytes (free-space accounting)
	headerSize   = 12

	slotEntrySize = 8 // uint32 offset + uint32 length
	freeOffset    = 0xFFFFFFFF
	noSlot        = 0xFFFF
	maxSlots      = noSlot // slots are uint16; noSlot is the sentinel
)

// Errors returned by partition operations.
var (
	ErrPartitionFull = errors.New("mm: partition full")
	ErrBadSlot       = errors.New("mm: no entity at slot")
	ErrEntityTooBig  = errors.New("mm: entity exceeds partition capacity")
)

// Partition is one fixed-size unit of database storage. The latch
// (§2.5: latches are held over partition manipulation) must be held by
// callers around any mutation; read paths may rely on the caller's
// higher-level locking.
type Partition struct {
	id  addr.PartitionID
	mu  sync.Mutex // the partition latch
	buf []byte
}

// NewPartition creates an empty partition image of size bytes.
func NewPartition(id addr.PartitionID, size int) *Partition {
	if size < headerSize+slotEntrySize {
		panic("mm: partition size too small")
	}
	p := &Partition{id: id, buf: make([]byte, size)}
	p.setU16(hdrNumSlots, 0)
	p.setU16(hdrFreeHead, noSlot)
	p.setU32(hdrHeapTop, uint32(size))
	p.setU32(hdrLiveBytes, 0)
	return p
}

// ErrBadImage reports a checkpoint image that fails structural
// validation: rotted header fields or slot entries that would otherwise
// surface later as slice-bounds panics (or an infinite free-chain walk)
// deep inside replay.
var ErrBadImage = errors.New("mm: corrupt partition image")

// FromImage reconstructs a partition from a checkpoint image, validating
// every structural invariant the accessors rely on. The image bytes come
// off a disk track whose ECC a mutation fault (or real bit rot) can
// leave intact, so nothing about them can be trusted.
func FromImage(id addr.PartitionID, image []byte) (*Partition, error) {
	if len(image) < headerSize+slotEntrySize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadImage, len(image), headerSize+slotEntrySize)
	}
	p := &Partition{id: id, buf: append([]byte(nil), image...)}
	n := int(p.u16(hdrNumSlots))
	tableEnd := headerSize + n*slotEntrySize
	top := int(p.u32(hdrHeapTop))
	live := int(p.u32(hdrLiveBytes))
	if tableEnd > len(image) {
		return nil, fmt.Errorf("%w: slot table of %d entries overruns %d-byte image", ErrBadImage, n, len(image))
	}
	if top < tableEnd || top > len(image) {
		return nil, fmt.Errorf("%w: heap top %d outside [%d,%d]", ErrBadImage, top, tableEnd, len(image))
	}
	if live > len(image)-top {
		return nil, fmt.Errorf("%w: %d live bytes exceed the %d-byte heap", ErrBadImage, live, len(image)-top)
	}
	for s := 0; s < n; s++ {
		off, length := p.slotEntry(addr.Slot(s))
		if off == freeOffset {
			if length > uint32(noSlot) {
				return nil, fmt.Errorf("%w: free slot %d chains to %d", ErrBadImage, s, length)
			}
			continue
		}
		if uint64(off) < uint64(top) || uint64(off)+uint64(length) > uint64(len(image)) {
			return nil, fmt.Errorf("%w: slot %d entity [%d,%d) outside heap [%d,%d)",
				ErrBadImage, s, off, uint64(off)+uint64(length), top, len(image))
		}
	}
	// The free chain must be acyclic and reach only free slots: InsertAt
	// walks it during replay, so a rotted cycle would hang recovery.
	seen := 0
	for cur := p.u16(hdrFreeHead); cur != noSlot; seen++ {
		if int(cur) >= n || seen >= n {
			return nil, fmt.Errorf("%w: free chain broken at slot %d", ErrBadImage, cur)
		}
		off, next := p.slotEntry(addr.Slot(cur))
		if off != freeOffset {
			return nil, fmt.Errorf("%w: free chain reaches occupied slot %d", ErrBadImage, cur)
		}
		cur = uint16(next)
	}
	return p, nil
}

// ID returns the partition's identity.
func (p *Partition) ID() addr.PartitionID { return p.id }

// Size returns the partition image size in bytes.
func (p *Partition) Size() int { return len(p.buf) }

// Latch acquires the partition latch.
func (p *Partition) Latch() { p.mu.Lock() }

// Unlatch releases the partition latch.
func (p *Partition) Unlatch() { p.mu.Unlock() }

func (p *Partition) setU16(off int, v uint16) { binary.LittleEndian.PutUint16(p.buf[off:], v) }
func (p *Partition) setU32(off int, v uint32) { binary.LittleEndian.PutUint32(p.buf[off:], v) }
func (p *Partition) u16(off int) uint16       { return binary.LittleEndian.Uint16(p.buf[off:]) }
func (p *Partition) u32(off int) uint32       { return binary.LittleEndian.Uint32(p.buf[off:]) }

func (p *Partition) slotOff(s addr.Slot) int { return headerSize + int(s)*slotEntrySize }

func (p *Partition) slotEntry(s addr.Slot) (off, length uint32) {
	so := p.slotOff(s)
	return p.u32(so), p.u32(so + 4)
}

func (p *Partition) setSlotEntry(s addr.Slot, off, length uint32) {
	so := p.slotOff(s)
	p.setU32(so, off)
	p.setU32(so+4, length)
}

// slotTableEnd returns the first byte past the slot table.
func (p *Partition) slotTableEnd() int {
	return headerSize + int(p.u16(hdrNumSlots))*slotEntrySize
}

// FreeBytes returns the total reclaimable space: the gap between slot
// table and heap top plus dead heap bytes (recoverable by compaction).
func (p *Partition) FreeBytes() int {
	gap := int(p.u32(hdrHeapTop)) - p.slotTableEnd()
	dead := len(p.buf) - int(p.u32(hdrHeapTop)) - int(p.u32(hdrLiveBytes))
	return gap + dead
}

// LiveBytes returns the bytes occupied by live entities.
func (p *Partition) LiveBytes() int { return int(p.u32(hdrLiveBytes)) }

// EntityCount returns the number of live entities.
func (p *Partition) EntityCount() int {
	n := 0
	for s := 0; s < int(p.u16(hdrNumSlots)); s++ {
		if off, _ := p.slotEntry(addr.Slot(s)); off != freeOffset {
			n++
		}
	}
	return n
}

// allocSlot returns a free slot index, reusing the free chain or growing
// the table. Growing requires gap space below the heap top.
func (p *Partition) allocSlot() (addr.Slot, error) {
	if h := p.u16(hdrFreeHead); h != noSlot {
		_, next := p.slotEntry(addr.Slot(h))
		p.setU16(hdrFreeHead, uint16(next))
		return addr.Slot(h), nil
	}
	n := p.u16(hdrNumSlots)
	if int(n) >= maxSlots {
		return 0, ErrPartitionFull
	}
	if p.slotTableEnd()+slotEntrySize > int(p.u32(hdrHeapTop)) {
		p.compact()
		if p.slotTableEnd()+slotEntrySize > int(p.u32(hdrHeapTop)) {
			return 0, ErrPartitionFull
		}
	}
	p.setU16(hdrNumSlots, n+1)
	p.setSlotEntry(addr.Slot(n), freeOffset, uint32(noSlot))
	return addr.Slot(n), nil
}

func (p *Partition) freeSlot(s addr.Slot) {
	p.setSlotEntry(s, freeOffset, uint32(p.u16(hdrFreeHead)))
	p.setU16(hdrFreeHead, uint16(s))
}

// heapAlloc reserves n bytes at the top of the heap, compacting if the
// bump gap is too small but dead space exists. Returns the offset.
func (p *Partition) heapAlloc(n int) (uint32, error) {
	top := int(p.u32(hdrHeapTop))
	if top-n < p.slotTableEnd() {
		p.compact()
		top = int(p.u32(hdrHeapTop))
		if top-n < p.slotTableEnd() {
			return 0, ErrPartitionFull
		}
	}
	top -= n
	p.setU32(hdrHeapTop, uint32(top))
	return uint32(top), nil
}

// compact squeezes live entities to the end of the image, reclaiming
// dead heap bytes. Slot indirection keeps entity addresses stable.
func (p *Partition) compact() {
	type live struct {
		slot addr.Slot
		off  uint32
		len  uint32
	}
	var entities []live
	for s := 0; s < int(p.u16(hdrNumSlots)); s++ {
		if off, length := p.slotEntry(addr.Slot(s)); off != freeOffset {
			entities = append(entities, live{addr.Slot(s), off, length})
		}
	}
	// Move highest-offset entities first so copies never overlap a
	// not-yet-moved source.
	sort.Slice(entities, func(i, j int) bool { return entities[i].off > entities[j].off })
	dst := uint32(len(p.buf))
	for _, e := range entities {
		dst -= e.len
		if dst != e.off {
			copy(p.buf[dst:dst+e.len], p.buf[e.off:e.off+e.len])
			p.setSlotEntry(e.slot, dst, e.len)
		}
	}
	p.setU32(hdrHeapTop, dst)
}

// Insert stores a new entity and returns its slot.
func (p *Partition) Insert(data []byte) (addr.Slot, error) {
	if len(data) > len(p.buf)-headerSize-slotEntrySize {
		return 0, fmt.Errorf("%w: %d bytes into %d-byte partition", ErrEntityTooBig, len(data), len(p.buf))
	}
	s, err := p.allocSlot()
	if err != nil {
		return 0, err
	}
	off, err := p.heapAlloc(len(data))
	if err != nil {
		p.freeSlot(s)
		return 0, err
	}
	copy(p.buf[off:], data)
	p.setSlotEntry(s, off, uint32(len(data)))
	p.setU32(hdrLiveBytes, p.u32(hdrLiveBytes)+uint32(len(data)))
	return s, nil
}

// InsertAt stores an entity at a specific slot; used by REDO replay,
// which must reproduce the exact addresses the original operations
// produced. The slot must be free (or beyond the current table).
func (p *Partition) InsertAt(s addr.Slot, data []byte) error {
	// Grow the table (as free slots) until s exists. allocSlot would
	// prefer the free chain, so extend the table explicitly.
	for int(s) >= int(p.u16(hdrNumSlots)) {
		n := p.u16(hdrNumSlots)
		if int(n) >= maxSlots {
			return ErrPartitionFull
		}
		if p.slotTableEnd()+slotEntrySize > int(p.u32(hdrHeapTop)) {
			p.compact()
			if p.slotTableEnd()+slotEntrySize > int(p.u32(hdrHeapTop)) {
				return ErrPartitionFull
			}
		}
		p.setU16(hdrNumSlots, n+1)
		p.freeSlot(addr.Slot(n))
	}
	if off, _ := p.slotEntry(s); off != freeOffset {
		return fmt.Errorf("mm: InsertAt slot %d already occupied", s)
	}
	// Unlink s from the free chain.
	if h := p.u16(hdrFreeHead); h == uint16(s) {
		_, next := p.slotEntry(s)
		p.setU16(hdrFreeHead, uint16(next))
	} else {
		for cur := h; cur != noSlot; {
			_, next := p.slotEntry(addr.Slot(cur))
			if uint16(next) == uint16(s) {
				_, nn := p.slotEntry(s)
				p.setSlotEntry(addr.Slot(cur), freeOffset, nn)
				break
			}
			cur = uint16(next)
		}
	}
	off, err := p.heapAlloc(len(data))
	if err != nil {
		p.freeSlot(s)
		return err
	}
	copy(p.buf[off:], data)
	p.setSlotEntry(s, off, uint32(len(data)))
	p.setU32(hdrLiveBytes, p.u32(hdrLiveBytes)+uint32(len(data)))
	return nil
}

// Read returns the entity at slot s. The returned slice aliases the
// partition image and is only valid until the next mutation; callers
// that retain it must copy.
func (p *Partition) Read(s addr.Slot) ([]byte, error) {
	if int(s) >= int(p.u16(hdrNumSlots)) {
		return nil, fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	off, length := p.slotEntry(s)
	if off == freeOffset {
		return nil, fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	return p.buf[off : off+length : off+length], nil
}

// Update replaces the entity at slot s. Same-size updates are done in
// place; size changes reallocate within the partition.
func (p *Partition) Update(s addr.Slot, data []byte) error {
	if int(s) >= int(p.u16(hdrNumSlots)) {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	off, length := p.slotEntry(s)
	if off == freeOffset {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	if int(length) == len(data) {
		copy(p.buf[off:], data)
		return nil
	}
	// Fit check before any mutation: after freeing the old copy and a
	// full compaction, the heap top would sit at len(buf) - (live -
	// length); the new entity must fit above the slot table.
	if len(p.buf)-int(p.u32(hdrLiveBytes)-length)-len(data) < p.slotTableEnd() {
		return ErrPartitionFull
	}
	// Mark the old space dead so compaction may reclaim it.
	p.setU32(hdrLiveBytes, p.u32(hdrLiveBytes)-length)
	p.setSlotEntry(s, freeOffset, uint32(noSlot)) // keep out of free chain
	noff, err := p.heapAlloc(len(data))
	if err != nil {
		// Unreachable given the fit check above.
		panic("mm: Update realloc failed after fit check")
	}
	copy(p.buf[noff:], data)
	p.setSlotEntry(s, noff, uint32(len(data)))
	p.setU32(hdrLiveBytes, p.u32(hdrLiveBytes)+uint32(len(data)))
	return nil
}

// WriteAt overwrites length bytes of the entity at slot s starting at
// byte offset within the entity. Used for in-place field updates and
// index node mutation.
func (p *Partition) WriteAt(s addr.Slot, entOff int, data []byte) error {
	if int(s) >= int(p.u16(hdrNumSlots)) {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	off, length := p.slotEntry(s)
	if off == freeOffset {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	if entOff < 0 || entOff+len(data) > int(length) {
		return fmt.Errorf("mm: WriteAt [%d,%d) outside entity of %d bytes", entOff, entOff+len(data), length)
	}
	copy(p.buf[int(off)+entOff:], data)
	return nil
}

// Delete removes the entity at slot s.
func (p *Partition) Delete(s addr.Slot) error {
	if int(s) >= int(p.u16(hdrNumSlots)) {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	off, length := p.slotEntry(s)
	if off == freeOffset {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, s)
	}
	p.setU32(hdrLiveBytes, p.u32(hdrLiveBytes)-length)
	p.freeSlot(s)
	return nil
}

// Slots calls fn for every live entity in slot order; fn's data slice
// aliases the image. It stops early if fn returns false.
func (p *Partition) Slots(fn func(s addr.Slot, data []byte) bool) {
	for s := 0; s < int(p.u16(hdrNumSlots)); s++ {
		off, length := p.slotEntry(addr.Slot(s))
		if off == freeOffset {
			continue
		}
		if !fn(addr.Slot(s), p.buf[off:off+length:off+length]) {
			return
		}
	}
}

// Snapshot returns a copy of the partition image: the unit of transfer
// for checkpoint operations (§2). The caller must hold whatever locks
// make the content transaction-consistent.
func (p *Partition) Snapshot() []byte {
	return append([]byte(nil), p.buf...)
}

// Image exposes the raw partition image for in-place REDO replay; the
// caller must hold the latch.
func (p *Partition) Image() []byte { return p.buf }
