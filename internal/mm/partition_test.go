package mm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdb/internal/addr"
)

var testPID = addr.PartitionID{Segment: 2, Part: 0}

func TestInsertReadDelete(t *testing.T) {
	p := NewPartition(testPID, 4096)
	s1, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("duplicate slots")
	}
	got, err := p.Read(s1)
	if err != nil || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Read(s1) = %q, %v", got, err)
	}
	if p.EntityCount() != 2 {
		t.Fatalf("EntityCount = %d", p.EntityCount())
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(s1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("read of deleted slot: %v", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double delete: %v", err)
	}
	// Deleted slot is reused.
	s3, err := p.Insert([]byte("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("free slot not reused: got %d want %d", s3, s1)
	}
}

func TestUpdateInPlaceAndRealloc(t *testing.T) {
	p := NewPartition(testPID, 4096)
	s, _ := p.Insert([]byte("aaaa"))
	if err := p.Update(s, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Read(s)
	if !bytes.Equal(got, []byte("bbbb")) {
		t.Fatalf("in-place update: %q", got)
	}
	if err := p.Update(s, []byte("a longer value than before")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Read(s)
	if !bytes.Equal(got, []byte("a longer value than before")) {
		t.Fatalf("realloc update: %q", got)
	}
	if err := p.Update(s, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Read(s)
	if !bytes.Equal(got, []byte("x")) {
		t.Fatalf("shrink update: %q", got)
	}
}

func TestWriteAt(t *testing.T) {
	p := NewPartition(testPID, 4096)
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.WriteAt(s, 2, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Read(s)
	if !bytes.Equal(got, []byte("abXYef")) {
		t.Fatalf("WriteAt result: %q", got)
	}
	if err := p.WriteAt(s, 5, []byte("ZZ")); err == nil {
		t.Fatal("out-of-range WriteAt succeeded")
	}
	if err := p.WriteAt(s, -1, []byte("Z")); err == nil {
		t.Fatal("negative-offset WriteAt succeeded")
	}
}

func TestPartitionFullAndCompaction(t *testing.T) {
	p := NewPartition(testPID, 1024)
	var slots []addr.Slot
	chunk := bytes.Repeat([]byte{7}, 100)
	for {
		s, err := p.Insert(chunk)
		if err != nil {
			if !errors.Is(err, ErrPartitionFull) {
				t.Fatal(err)
			}
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 8 {
		t.Fatalf("only %d inserts fit in 1KB", len(slots))
	}
	// Free every other entity, creating dead holes, then insert an
	// entity larger than any single hole: compaction must make room.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte{9}, 150)
	s, err := p.Insert(big)
	if err != nil {
		t.Fatalf("insert after fragmentation: %v", err)
	}
	got, _ := p.Read(s)
	if !bytes.Equal(got, big) {
		t.Fatal("content after compaction")
	}
	// Survivors are intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Read(slots[i])
		if err != nil || !bytes.Equal(got, chunk) {
			t.Fatalf("survivor %d corrupted after compaction: %v", slots[i], err)
		}
	}
}

func TestEntityTooBig(t *testing.T) {
	p := NewPartition(testPID, 1024)
	if _, err := p.Insert(make([]byte, 2000)); !errors.Is(err, ErrEntityTooBig) {
		t.Fatalf("oversized insert: %v", err)
	}
}

func TestInsertAt(t *testing.T) {
	p := NewPartition(testPID, 4096)
	if err := p.InsertAt(3, []byte("three")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(3)
	if err != nil || !bytes.Equal(got, []byte("three")) {
		t.Fatalf("Read(3) = %q, %v", got, err)
	}
	// Slots 0..2 were created free; normal inserts reuse them.
	s, err := p.Insert([]byte("reuse"))
	if err != nil {
		t.Fatal(err)
	}
	if s > 2 {
		t.Fatalf("free slot not reused: got %d", s)
	}
	if err := p.InsertAt(3, []byte("dup")); err == nil {
		t.Fatal("InsertAt into occupied slot succeeded")
	}
	// InsertAt into a mid-chain free slot.
	if err := p.InsertAt(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Read(1)
	if !bytes.Equal(got, []byte("one")) {
		t.Fatalf("Read(1) = %q", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := NewPartition(testPID, 2048)
	s1, _ := p.Insert([]byte("persist me"))
	s2, _ := p.Insert([]byte("me too"))
	if err := p.Delete(s2); err != nil {
		t.Fatal(err)
	}
	img := p.Snapshot()
	q, err := FromImage(testPID, img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Read(s1)
	if err != nil || !bytes.Equal(got, []byte("persist me")) {
		t.Fatalf("restored read: %q, %v", got, err)
	}
	if _, err := q.Read(s2); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("deleted entity present after restore: %v", err)
	}
	// The restored image allocates like the original would.
	s3, err := q.Insert([]byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s2 {
		t.Fatalf("restored free chain differs: got %d want %d", s3, s2)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p := NewPartition(testPID, 1024)
	s, _ := p.Insert([]byte("orig"))
	img := p.Snapshot()
	if err := p.Update(s, []byte("mutd")); err != nil {
		t.Fatal(err)
	}
	q, err := FromImage(testPID, img)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := q.Read(s)
	if !bytes.Equal(got, []byte("orig")) {
		t.Fatal("snapshot aliases live image")
	}
}

func TestSlotsIteration(t *testing.T) {
	p := NewPartition(testPID, 2048)
	want := map[addr.Slot][]byte{}
	for i := 0; i < 5; i++ {
		data := []byte{byte(i), byte(i + 1)}
		s, _ := p.Insert(data)
		want[s] = data
	}
	var n int
	p.Slots(func(s addr.Slot, data []byte) bool {
		if !bytes.Equal(data, want[s]) {
			t.Errorf("slot %d: %v", s, data)
		}
		n++
		return true
	})
	if n != 5 {
		t.Fatalf("iterated %d entities", n)
	}
	// Early stop.
	n = 0
	p.Slots(func(s addr.Slot, data []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop iterated %d", n)
	}
}

// TestPartitionModelEquivalence drives a partition with random
// operations against a map model; the partition must agree with the
// model at every step, and free-space accounting must never go
// negative.
func TestPartitionModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPartition(testPID, 8192)
	model := map[addr.Slot][]byte{}
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(100); {
		case op < 45: // insert
			data := make([]byte, 1+rng.Intn(64))
			rng.Read(data)
			s, err := p.Insert(data)
			if errors.Is(err, ErrPartitionFull) {
				// drop something to make progress
				for ms := range model {
					if err := p.Delete(ms); err != nil {
						t.Fatal(err)
					}
					delete(model, ms)
					break
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := model[s]; dup {
				t.Fatalf("step %d: slot %d double-allocated", step, s)
			}
			model[s] = append([]byte(nil), data...)
		case op < 70: // update
			for s := range model {
				data := make([]byte, 1+rng.Intn(64))
				rng.Read(data)
				if err := p.Update(s, data); err != nil {
					if errors.Is(err, ErrPartitionFull) {
						break
					}
					t.Fatal(err)
				}
				model[s] = append([]byte(nil), data...)
				break
			}
		default: // delete
			for s := range model {
				if err := p.Delete(s); err != nil {
					t.Fatal(err)
				}
				delete(model, s)
				break
			}
		}
		if p.FreeBytes() < 0 {
			t.Fatalf("step %d: negative free bytes", step)
		}
		if p.EntityCount() != len(model) {
			t.Fatalf("step %d: count %d, model %d", step, p.EntityCount(), len(model))
		}
	}
	for s, want := range model {
		got, err := p.Read(s)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("final slot %d: %v", s, err)
		}
	}
	// Full snapshot/restore preserves the final state.
	q, err := FromImage(testPID, p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for s, want := range model {
		got, err := q.Read(s)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("restored slot %d: %v", s, err)
		}
	}
}

func TestInsertQuickProperty(t *testing.T) {
	// Any sequence of inserts that succeeds is fully readable back.
	f := func(blobs [][]byte) bool {
		p := NewPartition(testPID, 16384)
		kept := map[addr.Slot][]byte{}
		for _, b := range blobs {
			if len(b) == 0 {
				continue
			}
			s, err := p.Insert(b)
			if err != nil {
				continue
			}
			kept[s] = b
		}
		for s, want := range kept {
			got, err := p.Read(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
