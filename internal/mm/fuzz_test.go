package mm

import (
	"testing"

	"mmdb/internal/addr"
)

// FuzzFromImage feeds arbitrary bytes to the partition-image validator.
// It must never panic, and any image it accepts must be safe to operate
// on: slot iteration, reads, an insert, and a delete must all stay in
// bounds (the validator's job is exactly to make the later fast paths
// unconditionally safe).
func FuzzFromImage(f *testing.F) {
	pid := addr.PartitionID{Segment: 2, Part: 1}
	// Seeds: a fresh empty partition, one with live entities, and one
	// with a free-chain hole.
	empty := NewPartition(pid, 512)
	f.Add(empty.Snapshot())
	filled := NewPartition(pid, 512)
	a, _ := filled.Insert([]byte("alpha"))
	if _, err := filled.Insert([]byte("beta-beta")); err != nil {
		f.Fatal(err)
	}
	f.Add(filled.Snapshot())
	if err := filled.Delete(a); err != nil {
		f.Fatal(err)
	}
	f.Add(filled.Snapshot())

	f.Fuzz(func(t *testing.T, image []byte) {
		p, err := FromImage(pid, image)
		if err != nil {
			return
		}
		live := 0
		p.Slots(func(s addr.Slot, data []byte) bool {
			live++
			got, rerr := p.Read(s)
			if rerr != nil {
				t.Fatalf("slot %v surfaced by Slots but unreadable: %v", s, rerr)
			}
			if len(got) != len(data) {
				t.Fatalf("slot %v: Slots sees %d bytes, Read %d", s, len(data), len(got))
			}
			return true
		})
		if live != p.EntityCount() {
			t.Fatalf("Slots visited %d entities, EntityCount says %d", live, p.EntityCount())
		}
		// Mutating an accepted image must not corrupt bookkeeping: an
		// insert (which walks the validated free chain) followed by a
		// delete must leave the entity count unchanged.
		before := p.EntityCount()
		s, ierr := p.Insert([]byte("probe"))
		if ierr != nil {
			return // legitimately full
		}
		if err := p.Delete(s); err != nil {
			t.Fatalf("delete of fresh insert failed: %v", err)
		}
		if p.EntityCount() != before {
			t.Fatalf("entity count %d after insert+delete, want %d", p.EntityCount(), before)
		}
	})
}
