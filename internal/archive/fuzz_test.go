package archive

import (
	"bytes"
	"testing"

	"mmdb/internal/addr"
)

// FuzzDecodeSegment drives the segment parser with arbitrary bytes: it
// must never panic, never report a clean prefix beyond the input or off
// a frame boundary, and every entry it does return must satisfy the
// format's own invariants (valid kind, data within the input). This is
// the parser that reads archive media back after arbitrary rot, so
// "garbage in, bounded skip out" is its entire contract.
func FuzzDecodeSegment(f *testing.F) {
	pid := addr.PartitionID{Segment: 2, Part: 3}
	f.Add([]byte{})
	f.Add(encodeEntry(EntryLogPage, pid, 7, []byte("page-bytes")))
	f.Add(encodeEntry(EntryAudit, addr.PartitionID{}, 0, []byte("audit")))
	f.Add(encodeEntry(EntryIndex, addr.PartitionID{}, 0, encodeIndex([]indexRec{{pid: pid, lsn: 7, off: 0}})))
	multi := encodeEntry(EntryLogPage, pid, 9, bytes.Repeat([]byte{0x42}, 3*frameCap))
	f.Add(multi)
	f.Add(multi[:FrameSize+17]) // torn tail
	flipped := append([]byte(nil), multi...)
	flipped[FrameSize+40] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, clean, damaged, _ := DecodeSegment(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean = %d outside [0, %d]", clean, len(data))
		}
		if clean%FrameSize != 0 {
			t.Fatalf("clean = %d not frame-aligned", clean)
		}
		if damaged < 0 || damaged > len(data)/FrameSize+1 {
			t.Fatalf("damaged = %d for %d frames", damaged, len(data)/FrameSize)
		}
		for _, e := range entries {
			switch e.Kind {
			case EntryLogPage, EntryAudit, EntryIndex:
			default:
				t.Fatalf("invalid entry kind 0x%02x surfaced", e.Kind)
			}
			if e.Off < 0 || e.Off >= int64(len(data)) {
				t.Fatalf("entry offset %d outside input", e.Off)
			}
			if len(e.Data) > len(data) {
				t.Fatalf("entry data longer than input")
			}
			// Round-trip: a surfaced entry re-encodes to frames that
			// decode back to the same entry.
			re := encodeEntry(e.Kind, e.PID, e.LSN, e.Data)
			back, _, dmg, err := DecodeSegment(re)
			if err != nil || dmg != 0 || len(back) != 1 {
				t.Fatalf("re-encode of surfaced entry failed: %v, dmg=%d, n=%d", err, dmg, len(back))
			}
			if back[0].Kind != e.Kind || back[0].PID != e.PID || back[0].LSN != e.LSN || !bytes.Equal(back[0].Data, e.Data) {
				t.Fatal("re-encoded entry round-trip mismatch")
			}
		}
	})
}
