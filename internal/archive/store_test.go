package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mmdb/internal/addr"
	"mmdb/internal/simdisk"
)

func TestStoreScanOrderAndKinds(t *testing.T) {
	st := newTestStore(t)
	pid := addr.PartitionID{Segment: 2, Part: 3}
	if err := st.AppendPage(pid, 7, []byte("page-7")); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendAudit([]byte("audit-block")); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPage(pid, 8, []byte("page-8")); err != nil {
		t.Fatal(err)
	}
	if n := st.Entries(); n != 3 {
		t.Fatalf("Entries = %d", n)
	}
	var got []Entry
	if err := st.Scan(func(e Entry) error {
		e.Data = append([]byte(nil), e.Data...)
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("scanned %d entries", len(got))
	}
	if got[0].Kind != EntryLogPage || got[0].PID != pid || got[0].LSN != 7 || !bytes.Equal(got[0].Data, []byte("page-7")) {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[1].Kind != EntryAudit || !bytes.Equal(got[1].Data, []byte("audit-block")) {
		t.Fatalf("entry 1 = %+v", got[1])
	}
	if got[2].Kind != EntryLogPage || got[2].LSN != 8 {
		t.Fatalf("entry 2 = %+v", got[2])
	}
}

func TestStoreMultiFrameEntry(t *testing.T) {
	st := newTestStore(t)
	pid := addr.PartitionID{Segment: 1, Part: 1}
	big := bytes.Repeat([]byte{0x5A}, 3*frameCap+17) // spans 4 frames
	if err := st.AppendPage(pid, 1, big); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := st.Scan(func(e Entry) error {
		n++
		if !bytes.Equal(e.Data, big) {
			t.Fatal("multi-frame entry data mangled")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scanned %d entries", n)
	}
}

func TestStoreSealRotationAndPartitionIndex(t *testing.T) {
	st, err := Open("", 2048) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	var seals int
	st.SetOnSeal(func() { seals++ })
	pidA := addr.PartitionID{Segment: 2, Part: 0}
	pidB := addr.PartitionID{Segment: 2, Part: 1}
	for lsn := simdisk.LSN(1); lsn <= 40; lsn++ {
		pid := pidA
		if lsn%2 == 0 {
			pid = pidB
		}
		if err := st.AppendPage(pid, lsn, bytes.Repeat([]byte{byte(lsn)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Segments() < 2 {
		t.Fatalf("segments = %d, want rotation", st.Segments())
	}
	if st.SealedSegments() == 0 || seals != st.SealedSegments() {
		t.Fatalf("sealed = %d, onSeal fired %d times", st.SealedSegments(), seals)
	}
	// ScanPartition walks the per-segment indexes: only A's pages, in
	// LSN order, with the right bytes.
	want := simdisk.LSN(1)
	if err := st.ScanPartition(pidA, func(lsn simdisk.LSN, page []byte) error {
		if lsn != want {
			t.Fatalf("lsn %d out of order, want %d", lsn, want)
		}
		if !bytes.Equal(page, bytes.Repeat([]byte{byte(lsn)}, 100)) {
			t.Fatalf("lsn %d bytes mangled", lsn)
		}
		want += 2
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want != 41 {
		t.Fatalf("visited up to lsn %d, want all 20 A-pages", want-2)
	}
}

func TestStoreDuplicateLSNDeliveredOnce(t *testing.T) {
	// Rollover appends are at-least-once across a crash: the same
	// (PID, LSN) can land twice. Readers must deliver it once.
	st := newTestStore(t)
	pid := addr.PartitionID{Segment: 2, Part: 0}
	for i := 0; i < 2; i++ {
		if err := st.AppendPage(pid, 5, []byte("dup")); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := st.ScanPartition(pid, func(simdisk.LSN, []byte) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("duplicate LSN delivered %d times", n)
	}
}

func TestStoreReopenFromDirSurvivesProcess(t *testing.T) {
	// The acceptance bar for "real archive": everything written and
	// synced is still there when a new Store opens the same directory —
	// nothing lives only in process memory.
	dir := t.TempDir()
	pid := addr.PartitionID{Segment: 2, Part: 0}
	st, err := Open(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for lsn := simdisk.LSN(1); lsn <= 30; lsn++ {
		if err := st.AppendPage(pid, lsn, bytes.Repeat([]byte{byte(lsn)}, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendAudit([]byte("audit")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	entries, sealed := st.Entries(), st.SealedSegments()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if sealed == 0 {
		t.Fatal("test needs at least one sealed segment")
	}

	st2, err := Open(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Entries() != entries {
		t.Fatalf("reopened entries = %d, want %d", st2.Entries(), entries)
	}
	if st2.SealedSegments() != sealed {
		t.Fatalf("reopened sealed = %d, want %d", st2.SealedSegments(), sealed)
	}
	want := simdisk.LSN(1)
	if err := st2.ScanPartition(pid, func(lsn simdisk.LSN, page []byte) error {
		if lsn != want || !bytes.Equal(page, bytes.Repeat([]byte{byte(lsn)}, 80)) {
			t.Fatalf("reopened lsn %d (want %d) mangled", lsn, want)
		}
		want++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want != 31 {
		t.Fatalf("reopened scan stopped at lsn %d", want-1)
	}
	// And appends resume on the unsealed tail.
	if err := st2.AppendPage(pid, 31, []byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if st2.Entries() != entries+1 {
		t.Fatalf("resumed entries = %d", st2.Entries())
	}
}

func TestStoreReopenRepairsTornTail(t *testing.T) {
	// A crash mid-append leaves a partial frame at the end of the active
	// segment. Open must truncate it away logically and resume appends
	// over it without losing the clean prefix.
	dir := t.TempDir()
	pid := addr.PartitionID{Segment: 2, Part: 0}
	st, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPage(pid, 1, []byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments on disk = %v, %v", names, err)
	}
	path := filepath.Join(dir, names[0].Name())
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0xEE}, 100)); err != nil { // torn tail
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Entries() != 1 {
		t.Fatalf("entries after tail repair = %d", st2.Entries())
	}
	if err := st2.AppendPage(pid, 2, []byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	if err := st2.Scan(func(e Entry) error {
		got = append(got, append([]byte(nil), e.Data...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], []byte("before-crash")) || !bytes.Equal(got[1], []byte("after-crash")) {
		t.Fatalf("entries after repair = %q", got)
	}
}

func TestDecodeSegmentResyncsPastDamage(t *testing.T) {
	pid := addr.PartitionID{Segment: 2, Part: 0}
	var buf []byte
	buf = append(buf, encodeEntry(EntryLogPage, pid, 1, []byte("one"))...)
	mid := len(buf)
	buf = append(buf, encodeEntry(EntryLogPage, pid, 2, []byte("two"))...)
	buf = append(buf, encodeEntry(EntryLogPage, pid, 3, []byte("three"))...)
	buf[mid+10] ^= 0xFF // rot inside the middle entry's only frame

	entries, clean, damaged, err := DecodeSegment(buf)
	if damaged != 1 || err == nil {
		t.Fatalf("damaged = %d, err = %v", damaged, err)
	}
	if clean != len(buf) {
		t.Fatalf("clean = %d, want %d (resync past the bad frame)", clean, len(buf))
	}
	if len(entries) != 2 || entries[0].LSN != 1 || entries[1].LSN != 3 {
		t.Fatalf("entries = %+v, want LSNs 1 and 3", entries)
	}
}

func TestDecodeSegmentTornTail(t *testing.T) {
	pid := addr.PartitionID{Segment: 2, Part: 0}
	whole := encodeEntry(EntryLogPage, pid, 1, []byte("whole"))
	multi := encodeEntry(EntryLogPage, pid, 2, bytes.Repeat([]byte{9}, 2*frameCap))
	// Crash after the multi-frame entry's first frame only.
	buf := append(append([]byte(nil), whole...), multi[:FrameSize]...)
	entries, clean, _, _ := DecodeSegment(buf)
	if len(entries) != 1 || entries[0].LSN != 1 {
		t.Fatalf("entries = %+v", entries)
	}
	if clean != len(whole) {
		t.Fatalf("clean = %d, want %d (resume over the unclosed entry)", clean, len(whole))
	}
}

func TestIndexRoundtrip(t *testing.T) {
	recs := []indexRec{
		{pid: addr.PartitionID{Segment: 3, Part: 1}, lsn: 9, off: 512},
		{pid: addr.PartitionID{Segment: 2, Part: 7}, lsn: 4, off: 0},
		{pid: addr.PartitionID{Segment: 2, Part: 7}, lsn: 2, off: 256},
	}
	got, err := DecodeIndex(encodeIndex(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d records", len(got))
	}
	// encodeIndex sorts by (PID, LSN).
	if got[0].lsn != 2 || got[1].lsn != 4 || got[2].lsn != 9 {
		t.Fatalf("index order = %+v", got)
	}
	if got[0].off != 256 || got[2].pid.Segment != 3 {
		t.Fatalf("index fields = %+v", got)
	}
}
