// Segment file format of the append-only archive tier.
//
// A segment is a sequence of fixed-size frames. Each frame is
// self-delimiting and individually checksummed, so a reader can always
// resynchronise on the next frame boundary after damage — rot never
// silently swallows the rest of a segment, it costs exactly the frames
// (and the entries they carried) that were actually hit:
//
//	frame := magic(2) | flags(1) | plen(2 LE) | payload | zero pad | crc32(4)
//
// The CRC is IEEE, computed over the whole frame except the trailer, so
// a flip anywhere — header, payload, or padding — is detected. Entries
// larger than one frame's capacity span consecutive frames; flags mark
// the first and last frame of each entry.
//
// The entry payload carries its own header so every archived log page
// is self-describing — which partition it belongs to and which log-disk
// LSN it was rolled from (wal pages do not record their LSN):
//
//	entry := kind(1) | segment(4 LE) | part(4 LE) | lsn(8 LE) | dlen(4 LE) | data
//
// Kinds: EntryLogPage is a rolled wal page, EntryAudit an audit-trail
// spool block (PID and LSN zero), EntryIndex the per-segment index
// appended when a segment is sealed. The index entry's data is the
// segment's page directory sorted by (segment, part, lsn), one record
// per archived page, enabling binary-search lookup of one partition's
// history without replaying the whole segment:
//
//	index := count(4 LE) then count × { segment(4) | part(4) | lsn(8) | off(8) }
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"mmdb/internal/addr"
	"mmdb/internal/simdisk"
)

// FrameSize is the fixed size of every segment frame.
const FrameSize = 256

const (
	frameMagic0 = 0xAC
	frameMagic1 = 0x1F

	frameHdrSize     = 5 // magic(2) + flags(1) + plen(2)
	frameTrailerSize = 4 // crc32
	frameCap         = FrameSize - frameHdrSize - frameTrailerSize

	flagFirst = 0x01
	flagLast  = 0x02
)

// Entry kinds. EntryLogPage deliberately matches simdisk.TapeKindLogPage
// and EntryAudit matches simdisk.TapeKindAudit, the framing bytes of the
// legacy in-memory tape this store replaces.
const (
	EntryLogPage byte = 0x01
	EntryAudit   byte = 0xA5
	EntryIndex   byte = 0x49
)

const entryHdrSize = 1 + 4 + 4 + 8 + 4 // kind + segment + part + lsn + dlen

// ErrBadFrame reports a frame that fails structural validation: wrong
// magic, impossible payload length, a checksum mismatch, or an entry
// whose frame chain is broken. Readers count and skip past it.
var ErrBadFrame = errors.New("archive: bad segment frame")

// Entry is one decoded archive entry.
type Entry struct {
	Kind byte
	PID  addr.PartitionID
	LSN  simdisk.LSN
	Data []byte
	Off  int64 // byte offset of the entry's first frame within its segment
}

// encodeEntry renders one entry as a run of frames.
func encodeEntry(kind byte, pid addr.PartitionID, lsn simdisk.LSN, data []byte) []byte {
	payload := make([]byte, entryHdrSize+len(data))
	payload[0] = kind
	binary.LittleEndian.PutUint32(payload[1:], uint32(pid.Segment))
	binary.LittleEndian.PutUint32(payload[5:], uint32(pid.Part))
	binary.LittleEndian.PutUint64(payload[9:], uint64(lsn))
	binary.LittleEndian.PutUint32(payload[17:], uint32(len(data)))
	copy(payload[entryHdrSize:], data)

	nframes := (len(payload) + frameCap - 1) / frameCap
	if nframes == 0 {
		nframes = 1
	}
	out := make([]byte, nframes*FrameSize)
	for i := 0; i < nframes; i++ {
		chunk := payload[i*frameCap:]
		if len(chunk) > frameCap {
			chunk = chunk[:frameCap]
		}
		f := out[i*FrameSize : (i+1)*FrameSize]
		f[0], f[1] = frameMagic0, frameMagic1
		var flags byte
		if i == 0 {
			flags |= flagFirst
		}
		if i == nframes-1 {
			flags |= flagLast
		}
		f[2] = flags
		binary.LittleEndian.PutUint16(f[3:], uint16(len(chunk)))
		copy(f[frameHdrSize:], chunk)
		crc := crc32.ChecksumIEEE(f[:FrameSize-frameTrailerSize])
		binary.LittleEndian.PutUint32(f[FrameSize-frameTrailerSize:], crc)
	}
	return out
}

// decodeFrame validates one frame and returns its flags and payload
// (aliasing f).
func decodeFrame(f []byte) (flags byte, payload []byte, err error) {
	if f[0] != frameMagic0 || f[1] != frameMagic1 {
		return 0, nil, fmt.Errorf("%w: magic %02x%02x", ErrBadFrame, f[0], f[1])
	}
	plen := int(binary.LittleEndian.Uint16(f[3:]))
	if plen == 0 || plen > frameCap {
		return 0, nil, fmt.Errorf("%w: payload length %d", ErrBadFrame, plen)
	}
	want := binary.LittleEndian.Uint32(f[FrameSize-frameTrailerSize:])
	if got := crc32.ChecksumIEEE(f[:FrameSize-frameTrailerSize]); got != want {
		return 0, nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrBadFrame, got, want)
	}
	return f[2], f[frameHdrSize : frameHdrSize+plen], nil
}

// parseEntry validates a reassembled entry payload.
func parseEntry(payload []byte, off int64) (Entry, error) {
	if len(payload) < entryHdrSize {
		return Entry{}, fmt.Errorf("%w: %d-byte entry payload", ErrBadFrame, len(payload))
	}
	e := Entry{
		Kind: payload[0],
		PID: addr.PartitionID{
			Segment: addr.SegmentID(binary.LittleEndian.Uint32(payload[1:])),
			Part:    addr.PartitionNum(binary.LittleEndian.Uint32(payload[5:])),
		},
		LSN: simdisk.LSN(binary.LittleEndian.Uint64(payload[9:])),
		Off: off,
	}
	dlen := int(binary.LittleEndian.Uint32(payload[17:]))
	if dlen != len(payload)-entryHdrSize {
		return Entry{}, fmt.Errorf("%w: entry data length %d in %d-byte payload",
			ErrBadFrame, dlen, len(payload))
	}
	switch e.Kind {
	case EntryLogPage, EntryAudit, EntryIndex:
	default:
		return Entry{}, fmt.Errorf("%w: unknown entry kind 0x%02x", ErrBadFrame, e.Kind)
	}
	e.Data = payload[entryHdrSize:]
	return e, nil
}

// DecodeSegment parses a segment's bytes. Damaged frames are skipped
// individually (frames are fixed-size, so the reader resynchronises on
// the next boundary) and the entries they belonged to are dropped;
// damaged counts how many frames were lost that way. A trailing
// partial frame — the torn tail of a crashed append — is ignored, and
// clean reports the frame-aligned prefix length up to which the
// segment decoded, i.e. where appends may safely resume.
func DecodeSegment(data []byte) (entries []Entry, clean int, damaged int, err error) {
	var payload []byte
	var entryStart int64
	open := false
	var firstErr error
	note := func(e error) {
		damaged++
		if firstErr == nil {
			firstErr = e
		}
	}
	for pos := 0; pos+FrameSize <= len(data); pos += FrameSize {
		flags, chunk, ferr := decodeFrame(data[pos : pos+FrameSize])
		if ferr != nil {
			note(ferr)
			open, payload = false, nil
			clean = pos + FrameSize
			continue
		}
		if flags&flagFirst != 0 {
			if open {
				note(fmt.Errorf("%w: entry restarted mid-chain at %d", ErrBadFrame, pos))
			}
			open, payload, entryStart = true, nil, int64(pos)
		} else if !open {
			note(fmt.Errorf("%w: continuation frame with no open entry at %d", ErrBadFrame, pos))
			clean = pos + FrameSize
			continue
		}
		payload = append(payload, chunk...)
		if flags&flagLast == 0 {
			continue
		}
		open = false
		e, perr := parseEntry(payload, entryStart)
		payload = nil
		if perr != nil {
			note(perr)
			clean = pos + FrameSize
			continue
		}
		entries = append(entries, e)
		clean = pos + FrameSize
	}
	if open {
		// Entry never closed: the torn tail of a crashed multi-frame
		// append. Resume appends at its first frame.
		clean = int(entryStart)
	}
	return entries, clean, damaged, firstErr
}

// indexRec locates one archived log page inside a segment.
type indexRec struct {
	pid addr.PartitionID
	lsn simdisk.LSN
	off int64
}

func pidLess(a, b addr.PartitionID) bool {
	if a.Segment != b.Segment {
		return a.Segment < b.Segment
	}
	return a.Part < b.Part
}

func recLess(a, b indexRec) bool {
	if a.pid != b.pid {
		return pidLess(a.pid, b.pid)
	}
	return a.lsn < b.lsn
}

// encodeIndex renders a segment's page directory, sorted by (PID, LSN).
func encodeIndex(recs []indexRec) []byte {
	sorted := append([]indexRec(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return recLess(sorted[i], sorted[j]) })
	out := make([]byte, 4+len(sorted)*24)
	binary.LittleEndian.PutUint32(out, uint32(len(sorted)))
	for i, r := range sorted {
		p := out[4+i*24:]
		binary.LittleEndian.PutUint32(p, uint32(r.pid.Segment))
		binary.LittleEndian.PutUint32(p[4:], uint32(r.pid.Part))
		binary.LittleEndian.PutUint64(p[8:], uint64(r.lsn))
		binary.LittleEndian.PutUint64(p[16:], uint64(r.off))
	}
	return out
}

// DecodeIndex parses an EntryIndex data block.
func DecodeIndex(data []byte) ([]indexRec, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d-byte index", ErrBadFrame, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n*24 != len(data)-4 {
		return nil, fmt.Errorf("%w: index count %d in %d bytes", ErrBadFrame, n, len(data))
	}
	recs := make([]indexRec, n)
	for i := range recs {
		p := data[4+i*24:]
		recs[i] = indexRec{
			pid: addr.PartitionID{
				Segment: addr.SegmentID(binary.LittleEndian.Uint32(p)),
				Part:    addr.PartitionNum(binary.LittleEndian.Uint32(p[4:])),
			},
			lsn: simdisk.LSN(binary.LittleEndian.Uint64(p[8:])),
			off: int64(binary.LittleEndian.Uint64(p[16:])),
		}
	}
	return recs, nil
}
