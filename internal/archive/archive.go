// Package archive implements the append-only archive tier and
// media-failure recovery (§2.6): the log pages rolled into archive
// segments plus the still-resident log disk pages form a complete
// per-partition operation history. Losing the checkpoint disks (or the
// log disks, thanks to duplexing and the archive) therefore never loses
// committed data: every partition can be rebuilt from an empty image by
// replaying its full history in LSN order — the whole database at once
// (Rebuild) or one partition on the restart path (RebuildPartition),
// which is what turns a rotted checkpoint track into a repair instead
// of a loss.
package archive

import (
	"errors"
	"fmt"

	"mmdb/internal/addr"
	"mmdb/internal/baseline"
	"mmdb/internal/catalog"
	"mmdb/internal/fault"
	"mmdb/internal/mm"
	"mmdb/internal/simdisk"
	"mmdb/internal/wal"
)

// Residue carries log records that had not yet reached the log disk at
// the failure: the Stable Log Tail's current bin pages (stable memory
// survives media failures).
type Residue struct {
	PID     addr.PartitionID
	Records []byte // concatenated record encodings
}

// applyPageTo replays one encoded wal page onto a partition, filtering
// records by the partition's identity.
func applyPageTo(p *mm.Partition, pg *wal.Page) error {
	recs, err := wal.DecodeAll(pg.Records)
	if err != nil {
		return err
	}
	for i := range recs {
		if recs[i].PID != pg.PID {
			continue
		}
		if err := baseline.Apply(p, &recs[i]); err != nil {
			return fmt.Errorf("archive: replaying %v: %w", pg.PID, err)
		}
	}
	return nil
}

// Rebuild reconstructs the entire database from the archive store, the
// surviving log disk pages, and the stable-memory residue, returning
// the rebuilt store and the most recent catalog root found on the log
// (§2.5: the root is periodically written to the log disk). rootPID is
// the sentinel partition address under which root pages are written.
//
// Pages are deduplicated by LSN across the two media: a page rolled
// into the archive but still resident on the log disk at crash time
// (the rollover fsyncs before it drops, so the overlap window is real,
// and a crashed rollover retries at-least-once) replays exactly once.
// Without that cross-check a twice-replayed page re-applies old
// operations *after* newer ones from its first pass — resurrecting
// deleted slots.
//
// A page that no longer decodes is detected rot: it is skipped and
// counted in damaged, never applied and never allowed to hide the rest
// of the history behind an abort.
func Rebuild(st *Store, log *simdisk.DuplexLog, residue []Residue, rootPID addr.PartitionID, partSize int) (*mm.Store, *catalog.Root, int, error) {
	store := mm.NewStore(partSize)
	parts := make(map[addr.PartitionID]*mm.Partition)
	var root *catalog.Root
	seen := make(map[simdisk.LSN]bool)
	damaged := 0

	applyPage := func(raw []byte) error {
		pg, err := wal.DecodePage(raw)
		if err != nil {
			damaged++
			return nil
		}
		if pg.PID == rootPID {
			r, err := catalog.DecodeRoot(pg.Records)
			if err != nil {
				damaged++
				return nil
			}
			root = r
			return nil
		}
		p := parts[pg.PID]
		if p == nil {
			p = mm.NewPartition(pg.PID, partSize)
			parts[pg.PID] = p
		}
		return applyPageTo(p, pg)
	}

	// Archive first: it holds the oldest pages, in roll (= LSN) order.
	// Audit entries never affect database state.
	if err := st.Scan(func(e Entry) error {
		if e.Kind != EntryLogPage {
			return nil
		}
		if e.LSN != 0 && seen[e.LSN] {
			return nil // at-least-once append retried across a crash
		}
		if err := applyPage(e.Data); err != nil {
			return err
		}
		if e.LSN != 0 {
			seen[e.LSN] = true
		}
		return nil
	}); err != nil {
		return nil, nil, damaged, err
	}
	// Then the pages still resident on the log disk, in LSN order,
	// skipping any the archive already replayed. Verified duplex reads:
	// a rotted primary copy falls back to (and is repaired from) the
	// mirror before the page is given up on.
	for lsn := simdisk.LSN(1); lsn < log.NextLSN(); lsn++ {
		if seen[lsn] {
			continue
		}
		raw, err := log.ReadChecked(lsn, func(b []byte) error {
			_, derr := wal.DecodePage(b)
			return derr
		})
		if err != nil {
			if fault.IsFault(err) {
				return nil, nil, damaged, err
			}
			if errors.Is(err, wal.ErrCorrupt) {
				damaged++ // both duplexed copies rotted
			}
			continue // dropped after archiving, or never written
		}
		if err := applyPage(raw); err != nil {
			return nil, nil, damaged, err
		}
	}
	// Finally the stable-memory residue: records newer than any log
	// page of their partition.
	for _, r := range residue {
		p := parts[r.PID]
		if p == nil {
			p = mm.NewPartition(r.PID, partSize)
			parts[r.PID] = p
		}
		recs, err := wal.DecodeAll(r.Records)
		if err != nil {
			return nil, nil, damaged, err
		}
		for i := range recs {
			if err := baseline.Apply(p, &recs[i]); err != nil {
				return nil, nil, damaged, fmt.Errorf("archive: residue of %v: %w", r.PID, err)
			}
		}
	}

	for pid, p := range parts {
		store.EnsureSegment(pid.Segment)
		store.Install(p)
	}
	return store, root, damaged, nil
}

// PartitionRebuild is the outcome of a single-partition archive
// rebuild.
type PartitionRebuild struct {
	Partition *mm.Partition
	Pages     int // log pages replayed (archive + log disk)
	Damaged   int // entries/pages skipped as detected rot
}

// RebuildPartition reconstructs one partition from its archived history
// plus its pages still resident on the log disk, in LSN order. It is
// the restart-path repair for a lost or rotted checkpoint image: the
// caller replays the partition's Stable Log Tail bin on top, exactly as
// it would have on top of the image.
//
// skip lists LSNs the caller will replay itself (the bin's page list):
// they are excluded here so no page is applied twice out of order.
// Pages are further deduplicated by LSN across archive and log disk,
// for the same reasons as in Rebuild.
//
// An error is returned only when a medium refuses to serve (an injected
// fault or the crash itself) — transient conditions where retrying the
// recovery is correct. Rotted entries are skipped and counted in
// Damaged instead, so one decayed archive frame costs exactly the
// records it held, not the whole rebuild.
func RebuildPartition(st *Store, log *simdisk.DuplexLog, pid addr.PartitionID, partSize int, skip map[simdisk.LSN]bool) (PartitionRebuild, error) {
	res := PartitionRebuild{Partition: mm.NewPartition(pid, partSize)}
	seen := make(map[simdisk.LSN]bool)

	applyPg := func(lsn simdisk.LSN, pg *wal.Page) error {
		if err := applyPageTo(res.Partition, pg); err != nil {
			return err
		}
		seen[lsn] = true
		res.Pages++
		return nil
	}

	// The archived history, located by binary search in the per-segment
	// (PID, LSN) indexes.
	if err := st.ScanPartition(pid, func(lsn simdisk.LSN, page []byte) error {
		if skip[lsn] {
			return nil
		}
		pg, err := wal.DecodePage(page)
		if err != nil || pg.PID != pid {
			res.Damaged++ // rot in the archived copy: detected, skipped
			return nil
		}
		return applyPg(lsn, pg)
	}); err != nil {
		return res, err
	}
	// Pages rolled off the bin at checkpoint fences but not yet
	// archived are only findable by scanning the resident log window.
	// Verified duplex reads: a rotted primary falls back to (and is
	// repaired from) the mirror.
	for lsn := simdisk.LSN(1); lsn < log.NextLSN(); lsn++ {
		if seen[lsn] || skip[lsn] {
			continue
		}
		var pg *wal.Page
		_, err := log.ReadChecked(lsn, func(b []byte) error {
			dp, derr := wal.DecodePage(b)
			if derr != nil {
				return derr
			}
			pg = dp
			return nil
		})
		if err != nil {
			if fault.IsFault(err) {
				return res, err
			}
			if errors.Is(err, wal.ErrCorrupt) {
				res.Damaged++ // both duplexed copies rotted
			}
			continue // dropped after archiving, or never written
		}
		if pg.PID != pid {
			continue
		}
		if err := applyPg(lsn, pg); err != nil {
			return res, err
		}
	}
	return res, nil
}
