// Package archive implements media-failure recovery (§2.6): the disk
// copy of the database is the archive copy of the primary memory copy,
// and the log pages rolled onto tape plus the still-resident log disk
// pages form a complete per-partition operation history. Losing the
// checkpoint disks (or the log disks, thanks to duplexing and the tape)
// therefore never loses committed data: every partition can be rebuilt
// from an empty image by replaying its full history in LSN order.
package archive

import (
	"fmt"

	"mmdb/internal/addr"
	"mmdb/internal/baseline"
	"mmdb/internal/catalog"
	"mmdb/internal/mm"
	"mmdb/internal/simdisk"
	"mmdb/internal/wal"
)

// Residue carries log records that had not yet reached the log disk at
// the failure: the Stable Log Tail's current bin pages (stable memory
// survives media failures).
type Residue struct {
	PID     addr.PartitionID
	Records []byte // concatenated record encodings
}

// Rebuild reconstructs the entire database from the archive tape, the
// surviving log disk pages, and the stable-memory residue, returning
// the rebuilt store and the most recent catalog root found on the log
// (§2.5: the root is periodically written to the log disk). rootPID is
// the sentinel partition address under which root pages are written.
func Rebuild(tape *simdisk.Tape, log *simdisk.DuplexLog, residue []Residue, rootPID addr.PartitionID, partSize int) (*mm.Store, *catalog.Root, error) {
	store := mm.NewStore(partSize)
	parts := make(map[addr.PartitionID]*mm.Partition)
	var root *catalog.Root

	applyPage := func(raw []byte) error {
		pg, err := wal.DecodePage(raw)
		if err != nil {
			return err
		}
		if pg.PID == rootPID {
			r, err := catalog.DecodeRoot(pg.Records)
			if err != nil {
				return fmt.Errorf("archive: root page: %w", err)
			}
			root = r
			return nil
		}
		p := parts[pg.PID]
		if p == nil {
			p = mm.NewPartition(pg.PID, partSize)
			parts[pg.PID] = p
		}
		recs, err := wal.DecodeAll(pg.Records)
		if err != nil {
			return err
		}
		for i := range recs {
			if recs[i].PID != pg.PID {
				continue
			}
			if err := baseline.Apply(p, &recs[i]); err != nil {
				return fmt.Errorf("archive: replaying %v: %w", pg.PID, err)
			}
		}
		return nil
	}

	// Tape first: it holds the oldest pages, archived in LSN order.
	// Entries are type-framed: log pages carry TapeKindLogPage; audit
	// pages are skipped here (they never affect database state).
	if err := tape.Scan(func(entry []byte) error {
		if len(entry) == 0 {
			return fmt.Errorf("archive: empty tape entry")
		}
		switch entry[0] {
		case simdisk.TapeKindLogPage:
			return applyPage(entry[1:])
		case simdisk.TapeKindAudit:
			return nil
		default:
			return fmt.Errorf("archive: unknown tape entry kind 0x%02x", entry[0])
		}
	}); err != nil {
		return nil, nil, err
	}
	// Then the pages still resident on the log disk, in LSN order.
	for lsn := simdisk.LSN(1); lsn < log.NextLSN(); lsn++ {
		raw, err := log.Read(lsn)
		if err != nil {
			continue // archived (on tape) or never written
		}
		if err := applyPage(raw); err != nil {
			return nil, nil, err
		}
	}
	// Finally the stable-memory residue: records newer than any log
	// page of their partition.
	for _, r := range residue {
		p := parts[r.PID]
		if p == nil {
			p = mm.NewPartition(r.PID, partSize)
			parts[r.PID] = p
		}
		recs, err := wal.DecodeAll(r.Records)
		if err != nil {
			return nil, nil, err
		}
		for i := range recs {
			if err := baseline.Apply(p, &recs[i]); err != nil {
				return nil, nil, fmt.Errorf("archive: residue of %v: %w", r.PID, err)
			}
		}
	}

	for pid, p := range parts {
		store.EnsureSegment(pid.Segment)
		store.Install(p)
	}
	return store, root, nil
}
