package archive

import (
	"bytes"
	"testing"

	"mmdb/internal/addr"
	"mmdb/internal/catalog"
	"mmdb/internal/cost"
	"mmdb/internal/simdisk"
	"mmdb/internal/wal"
)

var rootPID = addr.PartitionID{Segment: 0xFFFFFF, Part: 0xFFFFFF}

func page(pid addr.PartitionID, recs ...wal.Record) []byte {
	var buf []byte
	for i := range recs {
		buf = recs[i].Encode(buf)
	}
	return (&wal.Page{PID: pid, Records: buf}).Encode()
}

func rec(tag wal.Tag, pid addr.PartitionID, slot addr.Slot, data string) wal.Record {
	return wal.Record{Tag: tag, Txn: 1, PID: pid, Slot: slot, Data: []byte(data)}
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// mustAppend pushes a page onto the log disk and returns its LSN, so
// tests distribute one coherent LSN-ordered history across the two
// media exactly the way rollover does.
func mustAppend(t *testing.T, log *simdisk.DuplexLog, page []byte) simdisk.LSN {
	t.Helper()
	lsn, err := log.Append(page)
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func TestRebuildFromArchiveDiskAndResidue(t *testing.T) {
	m := &cost.Meter{}
	st := newTestStore(t)
	log := simdisk.NewDuplexLog(simdisk.DefaultParams(), m)
	pidA := addr.PartitionID{Segment: 2, Part: 0}
	pidB := addr.PartitionID{Segment: 3, Part: 1}

	// One history through the log disk; the oldest pages (including a
	// root page) are then rolled onto the archive and dropped, the way
	// rollover does it.
	p1 := page(pidA, rec(wal.TagRelInsert, pidA, 0, "a0"), rec(wal.TagRelInsert, pidA, 1, "a1"))
	p2 := page(pidB, rec(wal.TagRelInsert, pidB, 0, "b0"))
	root := &catalog.Root{NextRelID: 5, NextIdxID: 2, NextSeg: 7}
	p3 := (&wal.Page{PID: rootPID, Records: root.Encode()}).Encode()
	p4 := page(pidA, rec(wal.TagRelUpdate, pidA, 0, "a0v2"), rec(wal.TagRelDelete, pidA, 1, ""))

	lsn1 := mustAppend(t, log, p1)
	lsn2 := mustAppend(t, log, p2)
	lsn3 := mustAppend(t, log, p3)
	mustAppend(t, log, p4)

	for _, a := range []struct {
		pid  addr.PartitionID
		lsn  simdisk.LSN
		page []byte
	}{{pidA, lsn1, p1}, {pidB, lsn2, p2}, {rootPID, lsn3, p3}} {
		if err := st.AppendPage(a.pid, a.lsn, a.page); err != nil {
			t.Fatal(err)
		}
	}
	// An interleaved audit spool block the rebuild must skip.
	if err := st.AppendAudit([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	log.Drop(lsn3)

	// Newest history in stable-memory residue.
	var res []byte
	r := rec(wal.TagRelInsert, pidB, 1, "b1")
	res = r.Encode(res)

	store, gotRoot, damaged, err := Rebuild(st, log, []Residue{{PID: pidB, Records: res}}, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if damaged != 0 {
		t.Fatalf("damaged = %d", damaged)
	}
	if gotRoot == nil || gotRoot.NextRelID != 5 || gotRoot.NextSeg != 7 {
		t.Fatalf("root = %+v", gotRoot)
	}
	pa, err := store.Partition(pidA)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pa.Read(0)
	if err != nil || !bytes.Equal(got, []byte("a0v2")) {
		t.Fatalf("A slot0 = %q, %v", got, err)
	}
	if _, err := pa.Read(1); err == nil {
		t.Fatal("deleted A slot1 present")
	}
	pb, err := store.Partition(pidB)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = pb.Read(0)
	if !bytes.Equal(got, []byte("b0")) {
		t.Fatalf("B slot0 = %q", got)
	}
	got, _ = pb.Read(1)
	if !bytes.Equal(got, []byte("b1")) {
		t.Fatalf("B slot1 = %q (residue lost)", got)
	}
}

func TestRebuildEmpty(t *testing.T) {
	store, root, damaged, err := Rebuild(newTestStore(t), simdisk.NewDuplexLog(simdisk.DefaultParams(), nil), nil, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if root != nil {
		t.Fatal("phantom root")
	}
	if damaged != 0 {
		t.Fatalf("damaged = %d", damaged)
	}
	if len(store.ResidentIDs()) != 0 {
		t.Fatal("phantom partitions")
	}
}

func TestRebuildLatestRootWins(t *testing.T) {
	m := &cost.Meter{}
	st := newTestStore(t)
	log := simdisk.NewDuplexLog(simdisk.DefaultParams(), m)
	old := &catalog.Root{NextRelID: 2}
	newer := &catalog.Root{NextRelID: 9}
	oldPage := (&wal.Page{PID: rootPID, Records: old.Encode()}).Encode()
	lsn1 := mustAppend(t, log, oldPage)
	mustAppend(t, log, (&wal.Page{PID: rootPID, Records: newer.Encode()}).Encode())
	if err := st.AppendPage(rootPID, lsn1, oldPage); err != nil {
		t.Fatal(err)
	}
	log.Drop(lsn1)
	_, gotRoot, _, err := Rebuild(st, log, nil, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if gotRoot == nil || gotRoot.NextRelID != 9 {
		t.Fatalf("root = %+v, want the newer one", gotRoot)
	}
}

func TestRebuildSkipsDamagedPage(t *testing.T) {
	// A page that no longer decodes is detected rot: skipped and
	// counted, never applied, never aborting the rest of the history.
	st := newTestStore(t)
	pid := addr.PartitionID{Segment: 2, Part: 0}
	if err := st.AppendPage(pid, 1, []byte{2}); err != nil { // not a wal page
		t.Fatal(err)
	}
	good := page(pid, rec(wal.TagRelInsert, pid, 0, "ok"))
	if err := st.AppendPage(pid, 2, good); err != nil {
		t.Fatal(err)
	}
	store, _, damaged, err := Rebuild(st, simdisk.NewDuplexLog(simdisk.DefaultParams(), nil), nil, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if damaged != 1 {
		t.Fatalf("damaged = %d, want 1", damaged)
	}
	p, err := store.Partition(pid)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(0); !bytes.Equal(got, []byte("ok")) {
		t.Fatalf("slot0 = %q: good history lost behind the rotted page", got)
	}

	// Same through the single-partition path.
	res, err := RebuildPartition(st, simdisk.NewDuplexLog(simdisk.DefaultParams(), nil), pid, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged != 1 || res.Pages != 1 {
		t.Fatalf("partition rebuild = %+v", res)
	}
	if got, _ := res.Partition.Read(0); !bytes.Equal(got, []byte("ok")) {
		t.Fatalf("partition slot0 = %q", got)
	}
}

func TestRebuildOverlapWindowReplaysOnce(t *testing.T) {
	// The rollover window is real: pages are fsynced into the archive
	// before the log copies drop, and a crash between the two leaves the
	// same LSNs live on both media. They must replay exactly once — a
	// second pass over an insert that a later page deleted would
	// resurrect the slot.
	m := &cost.Meter{}
	st := newTestStore(t)
	log := simdisk.NewDuplexLog(simdisk.DefaultParams(), m)
	pid := addr.PartitionID{Segment: 2, Part: 0}

	p1 := page(pid, rec(wal.TagRelInsert, pid, 0, "v0"))
	p2 := page(pid, rec(wal.TagRelDelete, pid, 0, ""))
	p3 := page(pid, rec(wal.TagRelInsert, pid, 1, "v1"))
	lsn1 := mustAppend(t, log, p1)
	lsn2 := mustAppend(t, log, p2)
	mustAppend(t, log, p3)
	// Rolled into the archive, crash before Drop: overlap.
	if err := st.AppendPage(pid, lsn1, p1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPage(pid, lsn2, p2); err != nil {
		t.Fatal(err)
	}

	store, _, damaged, err := Rebuild(st, log, nil, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if damaged != 0 {
		t.Fatalf("damaged = %d", damaged)
	}
	p, err := store.Partition(pid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(0); err == nil {
		t.Fatal("deleted slot 0 present after overlap replay")
	}
	if got, _ := p.Read(1); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("slot1 = %q", got)
	}

	res, err := RebuildPartition(st, log, pid, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 3 {
		t.Fatalf("pages replayed = %d, want 3 (each LSN exactly once)", res.Pages)
	}
	if _, err := res.Partition.Read(0); err == nil {
		t.Fatal("deleted slot 0 present after partition overlap replay")
	}
	if got, _ := res.Partition.Read(1); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("partition slot1 = %q", got)
	}
}

func TestRebuildPartitionSkipSet(t *testing.T) {
	// LSNs listed in skip belong to the caller (the Stable Log Tail bin
	// is replayed on top of the rebuilt image): applying them here too
	// would replay them out of order relative to the bin's own pass.
	m := &cost.Meter{}
	st := newTestStore(t)
	log := simdisk.NewDuplexLog(simdisk.DefaultParams(), m)
	pid := addr.PartitionID{Segment: 2, Part: 0}

	p1 := page(pid, rec(wal.TagRelInsert, pid, 0, "v0"))
	p2 := page(pid, rec(wal.TagRelUpdate, pid, 0, "v1"))
	lsn1 := mustAppend(t, log, p1)
	lsn2 := mustAppend(t, log, p2)
	if err := st.AppendPage(pid, lsn1, p1); err != nil {
		t.Fatal(err)
	}
	log.Drop(lsn1)

	res, err := RebuildPartition(st, log, pid, 4096, map[simdisk.LSN]bool{lsn2: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 1 {
		t.Fatalf("pages = %d, want 1 (skip-set page excluded)", res.Pages)
	}
	if got, _ := res.Partition.Read(0); !bytes.Equal(got, []byte("v0")) {
		t.Fatalf("slot0 = %q, want pre-bin value", got)
	}
}

func TestRebuildPartitionFiltersOthers(t *testing.T) {
	m := &cost.Meter{}
	st := newTestStore(t)
	log := simdisk.NewDuplexLog(simdisk.DefaultParams(), m)
	pidA := addr.PartitionID{Segment: 2, Part: 0}
	pidB := addr.PartitionID{Segment: 2, Part: 1}

	pa := page(pidA, rec(wal.TagRelInsert, pidA, 0, "a"))
	pb := page(pidB, rec(wal.TagRelInsert, pidB, 0, "b"))
	pa2 := page(pidA, rec(wal.TagRelUpdate, pidA, 0, "a2"))
	lsnA := mustAppend(t, log, pa)
	lsnB := mustAppend(t, log, pb)
	mustAppend(t, log, pa2)
	if err := st.AppendPage(pidA, lsnA, pa); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPage(pidB, lsnB, pb); err != nil {
		t.Fatal(err)
	}
	log.Drop(lsnB)

	res, err := RebuildPartition(st, log, pidA, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 2 {
		t.Fatalf("pages = %d, want only partition A's two", res.Pages)
	}
	if got, _ := res.Partition.Read(0); !bytes.Equal(got, []byte("a2")) {
		t.Fatalf("slot0 = %q", got)
	}
}
