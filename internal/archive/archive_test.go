package archive

import (
	"bytes"
	"testing"

	"mmdb/internal/addr"
	"mmdb/internal/catalog"
	"mmdb/internal/cost"
	"mmdb/internal/simdisk"
	"mmdb/internal/wal"
)

var rootPID = addr.PartitionID{Segment: 0xFFFFFF, Part: 0xFFFFFF}

// frame prefixes a raw log page with its tape entry kind.
func frame(page []byte) []byte {
	return append([]byte{simdisk.TapeKindLogPage}, page...)
}

func page(pid addr.PartitionID, recs ...wal.Record) []byte {
	var buf []byte
	for i := range recs {
		buf = recs[i].Encode(buf)
	}
	return (&wal.Page{PID: pid, Records: buf}).Encode()
}

func rec(tag wal.Tag, pid addr.PartitionID, slot addr.Slot, data string) wal.Record {
	return wal.Record{Tag: tag, Txn: 1, PID: pid, Slot: slot, Data: []byte(data)}
}

func TestRebuildFromTapeDiskAndResidue(t *testing.T) {
	m := &cost.Meter{}
	tape := simdisk.NewTape()
	log := simdisk.NewDuplexLog(simdisk.DefaultParams(), m)
	pidA := addr.PartitionID{Segment: 2, Part: 0}
	pidB := addr.PartitionID{Segment: 3, Part: 1}

	// Oldest history on tape.
	tape.Append(frame(page(pidA, rec(wal.TagRelInsert, pidA, 0, "a0"), rec(wal.TagRelInsert, pidA, 1, "a1"))))
	tape.Append(frame(page(pidB, rec(wal.TagRelInsert, pidB, 0, "b0"))))
	// Root page also archived, interleaved with an audit page that the
	// rebuild must skip.
	root := &catalog.Root{NextRelID: 5, NextIdxID: 2, NextSeg: 7}
	tape.Append(frame((&wal.Page{PID: rootPID, Records: root.Encode()}).Encode()))
	tape.Append([]byte{simdisk.TapeKindAudit, 1, 2, 3})
	// Mid history on the log disk.
	if _, err := log.Append(page(pidA, rec(wal.TagRelUpdate, pidA, 0, "a0v2"), rec(wal.TagRelDelete, pidA, 1, ""))); err != nil {
		t.Fatal(err)
	}
	// Newest history in stable-memory residue.
	var res []byte
	r := rec(wal.TagRelInsert, pidB, 1, "b1")
	res = r.Encode(res)

	store, gotRoot, err := Rebuild(tape, log, []Residue{{PID: pidB, Records: res}}, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if gotRoot == nil || gotRoot.NextRelID != 5 || gotRoot.NextSeg != 7 {
		t.Fatalf("root = %+v", gotRoot)
	}
	pa, err := store.Partition(pidA)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pa.Read(0)
	if err != nil || !bytes.Equal(got, []byte("a0v2")) {
		t.Fatalf("A slot0 = %q, %v", got, err)
	}
	if _, err := pa.Read(1); err == nil {
		t.Fatal("deleted A slot1 present")
	}
	pb, err := store.Partition(pidB)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = pb.Read(0)
	if !bytes.Equal(got, []byte("b0")) {
		t.Fatalf("B slot0 = %q", got)
	}
	got, _ = pb.Read(1)
	if !bytes.Equal(got, []byte("b1")) {
		t.Fatalf("B slot1 = %q (residue lost)", got)
	}
}

func TestRebuildEmpty(t *testing.T) {
	store, root, err := Rebuild(simdisk.NewTape(), simdisk.NewDuplexLog(simdisk.DefaultParams(), nil), nil, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if root != nil {
		t.Fatal("phantom root")
	}
	if len(store.ResidentIDs()) != 0 {
		t.Fatal("phantom partitions")
	}
}

func TestRebuildLatestRootWins(t *testing.T) {
	m := &cost.Meter{}
	tape := simdisk.NewTape()
	log := simdisk.NewDuplexLog(simdisk.DefaultParams(), m)
	old := &catalog.Root{NextRelID: 2}
	newer := &catalog.Root{NextRelID: 9}
	tape.Append(frame((&wal.Page{PID: rootPID, Records: old.Encode()}).Encode()))
	if _, err := log.Append((&wal.Page{PID: rootPID, Records: newer.Encode()}).Encode()); err != nil {
		t.Fatal(err)
	}
	_, gotRoot, err := Rebuild(tape, log, nil, rootPID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if gotRoot == nil || gotRoot.NextRelID != 9 {
		t.Fatalf("root = %+v, want the newer one", gotRoot)
	}
}

func TestRebuildCorruptPage(t *testing.T) {
	tape := simdisk.NewTape()
	tape.Append([]byte{simdisk.TapeKindLogPage, 2})
	if _, _, err := Rebuild(tape, simdisk.NewDuplexLog(simdisk.DefaultParams(), nil), nil, rootPID, 4096); err == nil {
		t.Fatal("corrupt page accepted")
	}
	// Unknown tape entry kinds are rejected, not guessed at.
	tape2 := simdisk.NewTape()
	tape2.Append([]byte{0x7F, 1, 2})
	if _, _, err := Rebuild(tape2, simdisk.NewDuplexLog(simdisk.DefaultParams(), nil), nil, rootPID, 4096); err == nil {
		t.Fatal("unknown tape kind accepted")
	}
}
