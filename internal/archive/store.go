package archive

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mmdb/internal/addr"
	"mmdb/internal/fault"
	"mmdb/internal/simdisk"
)

// Store is the append-only archive tier (§2.6): the medium that filled
// log disks are rolled onto. It replaces the simulated in-memory tape
// with immutable, checksummed, fixed-frame, time-ordered segment files
// plus a per-segment (PID, LSN) index, so one partition's history can
// be located by binary search instead of a full replay — and so the
// archive actually survives the process.
//
// Backed by a directory when opened with one (real files, fsynced on
// demand), or by an in-process buffer for tests and ephemeral databases
// (same byte format, no durability across process exit).
type Store struct {
	mu       sync.Mutex
	fs       archFS
	segBytes int64
	segs     []*segment
	inj      *fault.Injector
	onSeal   func()
	entries  int // page + audit entries (index entries excluded)
	damaged  int // damaged frames/entries detected at open or read time
}

type segment struct {
	name    string
	f       segFile
	size    int64 // clean frame-aligned logical size
	sealed  bool
	index   []indexRec // page directory; sorted by (PID, LSN) once sealed
	entries int
}

// DefaultSegmentBytes is the segment rotation threshold used when the
// caller passes 0.
const DefaultSegmentBytes = 1 << 20

const segSuffix = ".mmar"

// Open opens (or creates) an archive store. dir == "" selects the
// in-memory backend; otherwise dir is created if needed and existing
// segment files are scanned, torn tails from a crashed append are
// truncated away, and appends resume on the last unsealed segment.
func Open(dir string, segBytes int) (*Store, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	var fs archFS
	if dir == "" {
		fs = newMemFS()
	} else {
		ofs, err := newOSFS(dir)
		if err != nil {
			return nil, err
		}
		fs = ofs
	}
	s := &Store{fs: fs, segBytes: int64(segBytes)}
	names, err := fs.list()
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := fs.open(name)
		if err != nil {
			return nil, fmt.Errorf("archive: opening segment %s: %w", name, err)
		}
		size, err := f.size()
		if err != nil {
			return nil, err
		}
		buf := make([]byte, size)
		if _, err := readFull(f, buf, 0); err != nil {
			return nil, fmt.Errorf("archive: reading segment %s: %w", name, err)
		}
		// The frame scan is authoritative: it tolerates torn tails,
		// skips damaged frames individually, and rebuilds the page
		// index even if the embedded index entry never made it out.
		entries, clean, damaged, _ := DecodeSegment(buf)
		seg := &segment{name: name, f: f, size: int64(clean)}
		for _, e := range entries {
			switch e.Kind {
			case EntryIndex:
				seg.sealed = true
			case EntryLogPage:
				seg.index = append(seg.index, indexRec{pid: e.PID, lsn: e.LSN, off: e.Off})
				seg.entries++
			default:
				seg.entries++
			}
		}
		sort.Slice(seg.index, func(i, j int) bool { return recLess(seg.index[i], seg.index[j]) })
		s.damaged += damaged
		s.entries += seg.entries
		s.segs = append(s.segs, seg)
	}
	return s, nil
}

// SetInjector attaches the fault injector; appends hit arch.append and
// scans/rebuild reads hit arch.read.
func (s *Store) SetInjector(inj *fault.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = inj
}

// SetOnSeal registers a callback invoked (outside the store lock is NOT
// guaranteed; keep it cheap) each time a segment is sealed.
func (s *Store) SetOnSeal(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onSeal = fn
}

// AppendPage archives one rolled log page under its partition identity
// and log-disk LSN.
func (s *Store) AppendPage(pid addr.PartitionID, lsn simdisk.LSN, page []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(EntryLogPage, pid, lsn, page)
}

// Append archives one audit-trail spool block. The signature matches
// the legacy tape so the audit trail can treat the store as its spool
// target.
func (s *Store) Append(data []byte) {
	_ = s.AppendAudit(data)
}

// AppendAudit archives one audit-trail spool block.
func (s *Store) AppendAudit(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(EntryAudit, addr.PartitionID{}, 0, data)
}

func (s *Store) appendLocked(kind byte, pid addr.PartitionID, lsn simdisk.LSN, data []byte) error {
	seg, err := s.activeLocked()
	if err != nil {
		return err
	}
	dec := fault.Decision{Apply: -1}
	if s.inj != nil {
		dec = s.inj.Check(fault.PointArchAppend, len(data))
	}
	if dec.Err != nil && dec.ApplyBytes(len(data)) == 0 && !dec.MarkBad {
		return dec.Err // nothing reached the medium
	}
	if dec.Mutated() {
		// Rot the entry data before framing: the frame checksums are
		// computed over the damaged bytes, modelling rot under valid
		// ECC. The wal page's own CRC (or the reader's entry parse)
		// catches it at rebuild time.
		data = dec.MutateBytes(data)
	}
	frames := encodeEntry(kind, pid, lsn, data)
	apply := dec.ApplyBytes(len(frames))
	if _, err := seg.f.writeAt(frames[:apply], seg.size); err != nil {
		return fmt.Errorf("archive: appending to %s: %w", seg.name, err)
	}
	if apply < len(frames) || dec.Err != nil {
		// Torn or failed append: the logical size is not advanced, so
		// the partial frames are overwritten by the next append (or
		// truncated away by tail repair after a crash) and the caller
		// retries the whole entry.
		if dec.Err != nil {
			return dec.Err
		}
		return fault.ErrInjected
	}
	if dec.MarkBad {
		// ActCorrupt: the append "succeeds" while the medium decays —
		// damage the first frame's checksum in place so a later read
		// detects and skips the entry.
		var flip [1]byte
		if _, err := readFull(seg.f, flip[:], seg.size+FrameSize-1); err == nil {
			flip[0] ^= 0xFF
			_, _ = seg.f.writeAt(flip[:], seg.size+FrameSize-1)
		}
	}
	if kind == EntryLogPage {
		seg.index = append(seg.index, indexRec{pid: pid, lsn: lsn, off: seg.size})
	}
	seg.size += int64(len(frames))
	seg.entries++
	s.entries++
	if seg.size >= s.segBytes {
		s.sealLocked(seg)
	}
	return nil
}

// activeLocked returns the segment open for appends, creating the next
// one if the store is empty or the last segment is sealed.
func (s *Store) activeLocked() (*segment, error) {
	if n := len(s.segs); n > 0 && !s.segs[n-1].sealed {
		return s.segs[n-1], nil
	}
	name := fmt.Sprintf("seg-%08d%s", len(s.segs), segSuffix)
	f, err := s.fs.create(name)
	if err != nil {
		return nil, fmt.Errorf("archive: creating segment %s: %w", name, err)
	}
	seg := &segment{name: name, f: f}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// sealLocked freezes a full segment: its page directory is appended as
// an EntryIndex entry (sorted by PID then LSN for binary search), the
// file is fsynced, and the segment becomes immutable. Failures leave
// the segment unsealed; the next append retries.
func (s *Store) sealLocked(seg *segment) {
	sort.Slice(seg.index, func(i, j int) bool { return recLess(seg.index[i], seg.index[j]) })
	frames := encodeEntry(EntryIndex, addr.PartitionID{}, 0, encodeIndex(seg.index))
	if _, err := seg.f.writeAt(frames, seg.size); err != nil {
		return
	}
	if err := seg.f.sync(); err != nil {
		return
	}
	seg.size += int64(len(frames))
	seg.sealed = true
	if s.onSeal != nil {
		s.onSeal()
	}
}

// Sync flushes the active segment to its medium. Log-disk rollover
// calls it before dropping the rolled pages, so the archive never
// trails the drop.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.segs); n > 0 && !s.segs[n-1].sealed {
		return s.segs[n-1].f.sync()
	}
	return nil
}

// Entries returns the number of archived page + audit entries.
func (s *Store) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries
}

// Segments returns the number of segment files, sealed or active.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// SealedSegments returns how many segments have been sealed.
func (s *Store) SealedSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.segs {
		if seg.sealed {
			n++
		}
	}
	return n
}

// Damaged returns the cumulative count of damaged frames and entries
// detected at open or during scans — every one is rot that was caught,
// never silently replayed.
func (s *Store) Damaged() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.damaged
}

// Close closes the underlying segment files. The store must not be
// used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if err := seg.f.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// snapshotLocked captures the segment list and their clean sizes so
// scans run without the store lock (the satellite-1 lesson: never hold
// the lock across a user callback).
func (s *Store) snapshot() []scanSeg {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]scanSeg, len(s.segs))
	for i, seg := range s.segs {
		out[i] = scanSeg{seg: seg, size: seg.size}
	}
	return out
}

type scanSeg struct {
	seg  *segment
	size int64
}

// Scan calls fn for every archived page and audit entry in append
// (time) order. Index entries are internal and skipped. Damaged frames
// are counted and skipped, not surfaced. fn must not retain Entry.Data.
func (s *Store) Scan(fn func(Entry) error) error {
	for _, ss := range s.snapshot() {
		buf := make([]byte, ss.size)
		if _, err := readFull(ss.seg.f, buf, 0); err != nil {
			return fmt.Errorf("archive: reading segment %s: %w", ss.seg.name, err)
		}
		entries, _, damaged, _ := DecodeSegment(buf)
		dropped := 0
		for i := range entries {
			if entries[i].Kind == EntryIndex {
				continue
			}
			e, ok, err := s.deliver(ss.seg, entries[i])
			if err != nil {
				return err
			}
			if !ok {
				dropped++
				continue
			}
			if err := fn(e); err != nil {
				return err
			}
		}
		s.noteDamage(damaged + dropped)
	}
	return nil
}

// ScanPartition calls fn with every archived log page of one partition
// in LSN order, located through the per-segment indexes by binary
// search. Duplicate LSNs (an append retried across a crash is
// at-least-once) are delivered once.
func (s *Store) ScanPartition(pid addr.PartitionID, fn func(lsn simdisk.LSN, page []byte) error) error {
	seen := make(map[simdisk.LSN]bool)
	for _, ss := range s.snapshot() {
		s.mu.Lock()
		idx := append([]indexRec(nil), ss.seg.index...)
		sealed := ss.seg.sealed
		s.mu.Unlock()
		if !sealed {
			sort.Slice(idx, func(i, j int) bool { return recLess(idx[i], idx[j]) })
		}
		first := sort.Search(len(idx), func(i int) bool { return !pidLess(idx[i].pid, pid) })
		dropped := 0
		for i := first; i < len(idx) && idx[i].pid == pid; i++ {
			if seen[idx[i].lsn] {
				continue
			}
			raw, derr := s.readEntryAt(ss.seg, idx[i].off, ss.size)
			if derr != nil {
				dropped++
				continue
			}
			e, ok, err := s.deliver(ss.seg, raw)
			if err != nil {
				return err
			}
			if !ok || e.Kind != EntryLogPage || e.PID != pid || e.LSN != idx[i].lsn {
				dropped++
				continue
			}
			seen[e.LSN] = true
			if err := fn(e.LSN, e.Data); err != nil {
				return err
			}
		}
		s.noteDamage(dropped)
	}
	return nil
}

// deliver runs the arch.read fault point for one entry about to reach a
// caller. ok=false means the entry was damaged (injected or pre-existing)
// and must be skipped — detected rot, counted by the caller.
func (s *Store) deliver(seg *segment, e Entry) (Entry, bool, error) {
	if s.inj == nil {
		return e, true, nil
	}
	dec := s.inj.Check(fault.PointArchRead, 0)
	if dec.Err != nil {
		return e, false, dec.Err
	}
	if dec.MarkBad {
		// Media decay: damage the entry's first frame in place so every
		// later read fails too.
		var flip [1]byte
		if _, err := readFull(seg.f, flip[:], e.Off+FrameSize-1); err == nil {
			flip[0] ^= 0xFF
			_, _ = seg.f.writeAt(flip[:], e.Off+FrameSize-1)
		}
		return e, false, nil
	}
	if dec.Mutated() {
		// Transient rot of the returned copy only; the stored frames
		// stay pristine. The damaged bytes fail the wal page decode (or
		// the entry parse) downstream — detected, never applied.
		e.Data = dec.MutateBytes(e.Data)
	}
	return e, true, nil
}

// readEntryAt re-reads one entry from its frame offset.
func (s *Store) readEntryAt(seg *segment, off, limit int64) (Entry, error) {
	var payload []byte
	start := off
	for {
		if off+FrameSize > limit {
			return Entry{}, fmt.Errorf("%w: entry at %d runs past segment end", ErrBadFrame, start)
		}
		var f [FrameSize]byte
		if _, err := readFull(seg.f, f[:], off); err != nil {
			return Entry{}, err
		}
		flags, chunk, err := decodeFrame(f[:])
		if err != nil {
			return Entry{}, err
		}
		if off == start && flags&flagFirst == 0 {
			return Entry{}, fmt.Errorf("%w: offset %d is not an entry start", ErrBadFrame, start)
		}
		payload = append(payload, chunk...)
		off += FrameSize
		if flags&flagLast != 0 {
			break
		}
	}
	return parseEntry(payload, start)
}

func (s *Store) noteDamage(n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.damaged += n
	s.mu.Unlock()
}

// --- backends ---

type archFS interface {
	list() ([]string, error)
	create(name string) (segFile, error)
	open(name string) (segFile, error)
}

type segFile interface {
	io.ReaderAt
	writeAt(p []byte, off int64) (int, error)
	size() (int64, error)
	sync() error
	close() error
}

func readFull(f io.ReaderAt, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := f.ReadAt(p, off)
	if err == io.EOF && n == len(p) {
		err = nil
	}
	return n, err
}

// osFS stores segments as real files in a directory, with the directory
// entry fsynced on segment creation so a crash cannot lose the file
// itself.
type osFS struct {
	dir string
}

func newOSFS(dir string) (*osFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &osFS{dir: dir}, nil
}

func (o *osFS) list() ([]string, error) {
	des, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), segSuffix) {
			names = append(names, de.Name())
		}
	}
	return names, nil
}

func (o *osFS) create(name string) (segFile, error) {
	f, err := os.OpenFile(filepath.Join(o.dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if d, derr := os.Open(o.dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return (*osFile)(f), nil
}

func (o *osFS) open(name string) (segFile, error) {
	f, err := os.OpenFile(filepath.Join(o.dir, name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return (*osFile)(f), nil
}

type osFile os.File

func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return (*os.File)(f).ReadAt(p, off) }
func (f *osFile) writeAt(p []byte, off int64) (int, error) {
	return (*os.File)(f).WriteAt(p, off)
}
func (f *osFile) size() (int64, error) {
	st, err := (*os.File)(f).Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
func (f *osFile) sync() error  { return (*os.File)(f).Sync() }
func (f *osFile) close() error { return (*os.File)(f).Close() }

// memFS keeps segments in process memory: the same byte format with no
// durability across process exit. It survives the simulated power
// cycles of crashhunt (the Hardware, and so the Store, is carried
// across DB.Crash/Recover) but not a real restart — production
// configurations set Config.ArchiveDir.
type memFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

func newMemFS() *memFS { return &memFS{files: make(map[string]*memFile)} }

func (m *memFS) list() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for n := range m.files {
		names = append(names, n)
	}
	return names, nil
}

func (m *memFS) create(name string) (segFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return f, nil
}

func (m *memFS) open(name string) (segFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, os.ErrNotExist
	}
	return f, nil
}

type memFile struct {
	mu sync.Mutex
	b  []byte
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.b)) {
		return 0, io.EOF
	}
	n := copy(p, f.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) writeAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(f.b)) {
		f.b = append(f.b, make([]byte, need-int64(len(f.b)))...)
	}
	copy(f.b[off:], p)
	return len(p), nil
}

func (f *memFile) size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.b)), nil
}

func (f *memFile) sync() error  { return nil }
func (f *memFile) close() error { return nil }
