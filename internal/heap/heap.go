// Package heap implements relation tuple storage: typed schemas and the
// tuple encoding used inside partitions. Tuples are entities — they
// live in relation-segment partitions and never cross partition
// boundaries (§2). Variable-length string bytes are carried inline in
// the tuple's heap allocation (the partition's string space), which the
// partition manages as a heap; this is why relation log records are
// operation records for a partition (§2.3.2).
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ColType is a column's data type.
type ColType uint8

// Supported column types.
const (
	Int64 ColType = iota + 1
	Float64
	String
)

func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("coltype(%d)", uint8(t))
	}
}

// Fixed reports whether the type has a fixed-width encoding.
func (t ColType) Fixed() bool { return t == Int64 || t == Float64 }

// Column describes one relation column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns.
type Schema []Column

// Errors returned by the tuple codec.
var (
	ErrSchemaMismatch = errors.New("heap: value does not match schema")
	ErrCorruptTuple   = errors.New("heap: corrupt tuple encoding")
	ErrNoColumn       = errors.New("heap: no such column")
)

// ColIndex returns the index of the named column.
func (s Schema) ColIndex(name string) (int, error) {
	for i, c := range s {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNoColumn, name)
}

// Validate checks the schema for duplicate names and valid types.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return errors.New("heap: empty schema")
	}
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Name == "" {
			return errors.New("heap: empty column name")
		}
		if seen[c.Name] {
			return fmt.Errorf("heap: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case Int64, Float64, String:
		default:
			return fmt.Errorf("heap: column %q has invalid type %v", c.Name, c.Type)
		}
	}
	return nil
}

// Tuple is a decoded row: one value per schema column. Values are
// int64, float64, or string.
type Tuple []any

// Encode serialises the tuple per the schema. Fixed-width columns are
// stored in place; strings as u16 length + bytes.
func (s Schema) Encode(t Tuple) ([]byte, error) {
	if len(t) != len(s) {
		return nil, fmt.Errorf("%w: %d values for %d columns", ErrSchemaMismatch, len(t), len(s))
	}
	size := 0
	for i, c := range s {
		switch c.Type {
		case Int64, Float64:
			size += 8
		case String:
			str, ok := t[i].(string)
			if !ok {
				return nil, fmt.Errorf("%w: column %q wants string, got %T", ErrSchemaMismatch, c.Name, t[i])
			}
			if len(str) > math.MaxUint16 {
				return nil, fmt.Errorf("%w: string column %q too long (%d bytes)", ErrSchemaMismatch, c.Name, len(str))
			}
			size += 2 + len(str)
		}
	}
	out := make([]byte, 0, size)
	for i, c := range s {
		switch c.Type {
		case Int64:
			v, ok := t[i].(int64)
			if !ok {
				return nil, fmt.Errorf("%w: column %q wants int64, got %T", ErrSchemaMismatch, c.Name, t[i])
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			out = append(out, b[:]...)
		case Float64:
			v, ok := t[i].(float64)
			if !ok {
				return nil, fmt.Errorf("%w: column %q wants float64, got %T", ErrSchemaMismatch, c.Name, t[i])
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			out = append(out, b[:]...)
		case String:
			str := t[i].(string)
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(len(str)))
			out = append(out, b[:]...)
			out = append(out, str...)
		}
	}
	return out, nil
}

// Decode parses an encoded tuple.
func (s Schema) Decode(buf []byte) (Tuple, error) {
	t := make(Tuple, len(s))
	for i, c := range s {
		switch c.Type {
		case Int64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("%w: truncated int64 column %q", ErrCorruptTuple, c.Name)
			}
			t[i] = int64(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case Float64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("%w: truncated float64 column %q", ErrCorruptTuple, c.Name)
			}
			t[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
		case String:
			if len(buf) < 2 {
				return nil, fmt.Errorf("%w: truncated string header %q", ErrCorruptTuple, c.Name)
			}
			n := int(binary.LittleEndian.Uint16(buf))
			buf = buf[2:]
			if len(buf) < n {
				return nil, fmt.Errorf("%w: truncated string column %q", ErrCorruptTuple, c.Name)
			}
			t[i] = string(buf[:n])
			buf = buf[n:]
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptTuple, len(buf))
	}
	return t, nil
}

// FixedOffset returns the byte offset of column col within an encoded
// tuple and true, when the offset is position-independent — i.e. every
// earlier column is fixed-width and the column itself is fixed-width.
// Updates to such columns can be logged as small in-place write records
// (the paper's typical 8–24 byte records) instead of whole-tuple
// images.
func (s Schema) FixedOffset(col int) (int, bool) {
	if col < 0 || col >= len(s) || !s[col].Type.Fixed() {
		return 0, false
	}
	off := 0
	for i := 0; i < col; i++ {
		if !s[i].Type.Fixed() {
			return 0, false
		}
		off += 8
	}
	return off, true
}

// EncodeValue serialises a single fixed-width value for an in-place
// column write.
func (s Schema) EncodeValue(col int, v any) ([]byte, error) {
	if col < 0 || col >= len(s) {
		return nil, fmt.Errorf("%w: column %d", ErrNoColumn, col)
	}
	var b [8]byte
	switch s[col].Type {
	case Int64:
		iv, ok := v.(int64)
		if !ok {
			return nil, fmt.Errorf("%w: column %q wants int64, got %T", ErrSchemaMismatch, s[col].Name, v)
		}
		binary.LittleEndian.PutUint64(b[:], uint64(iv))
	case Float64:
		fv, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("%w: column %q wants float64, got %T", ErrSchemaMismatch, s[col].Name, v)
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(fv))
	default:
		return nil, fmt.Errorf("%w: column %q is not fixed-width", ErrSchemaMismatch, s[col].Name)
	}
	return b[:], nil
}

// Equal reports deep equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	return append(Tuple(nil), t...)
}
