package heap

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

var accountSchema = Schema{
	{Name: "id", Type: Int64},
	{Name: "balance", Type: Float64},
	{Name: "owner", Type: String},
}

func TestSchemaValidate(t *testing.T) {
	if err := accountSchema.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{},
		{{Name: "", Type: Int64}},
		{{Name: "a", Type: Int64}, {Name: "a", Type: Int64}},
		{{Name: "a", Type: ColType(99)}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tup := Tuple{int64(42), 99.5, "alice"}
	enc, err := accountSchema.Encode(tup)
	if err != nil {
		t.Fatal(err)
	}
	got, err := accountSchema.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tup) {
		t.Fatalf("round trip: %v vs %v", got, tup)
	}
}

func TestEncodeTypeErrors(t *testing.T) {
	cases := []Tuple{
		{int64(1), 2.0},                             // too few
		{int64(1), 2.0, "x", "y"},                   // too many
		{"not-int", 2.0, "x"},                       // wrong type
		{int64(1), "not-float", "x"},                // wrong type
		{int64(1), 2.0, 3},                          // wrong type
		{int64(1), 2.0, strings.Repeat("x", 70000)}, // oversize string
	}
	for i, c := range cases {
		if _, err := accountSchema.Encode(c); !errors.Is(err, ErrSchemaMismatch) {
			t.Errorf("case %d: got %v", i, err)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	tup := Tuple{int64(42), 1.0, "bob"}
	enc, _ := accountSchema.Encode(tup)
	for _, cut := range []int{3, 9, 17, len(enc) - 1} {
		if _, err := accountSchema.Decode(enc[:cut]); !errors.Is(err, ErrCorruptTuple) {
			t.Errorf("cut at %d: %v", cut, err)
		}
	}
	if _, err := accountSchema.Decode(append(enc, 0)); !errors.Is(err, ErrCorruptTuple) {
		t.Error("trailing bytes accepted")
	}
}

func TestColIndex(t *testing.T) {
	i, err := accountSchema.ColIndex("balance")
	if err != nil || i != 1 {
		t.Fatalf("ColIndex = %d, %v", i, err)
	}
	if _, err := accountSchema.ColIndex("ghost"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("missing column: %v", err)
	}
}

func TestFixedOffset(t *testing.T) {
	off, ok := accountSchema.FixedOffset(0)
	if !ok || off != 0 {
		t.Fatalf("col 0: %d, %v", off, ok)
	}
	off, ok = accountSchema.FixedOffset(1)
	if !ok || off != 8 {
		t.Fatalf("col 1: %d, %v", off, ok)
	}
	if _, ok := accountSchema.FixedOffset(2); ok {
		t.Fatal("string column reported fixed")
	}
	// A fixed column after a string column is not position-independent.
	s := Schema{{Name: "s", Type: String}, {Name: "i", Type: Int64}}
	if _, ok := s.FixedOffset(1); ok {
		t.Fatal("fixed column after string reported position-independent")
	}
	if _, ok := accountSchema.FixedOffset(-1); ok {
		t.Fatal("negative column")
	}
	if _, ok := accountSchema.FixedOffset(99); ok {
		t.Fatal("out of range column")
	}
}

func TestEncodeValueMatchesFullEncoding(t *testing.T) {
	tup := Tuple{int64(7), 2.5, "carol"}
	enc, _ := accountSchema.Encode(tup)
	// Patch balance in place and compare against re-encoding.
	val, err := accountSchema.EncodeValue(1, 3.75)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := accountSchema.FixedOffset(1)
	copy(enc[off:], val)
	got, err := accountSchema.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := Tuple{int64(7), 3.75, "carol"}
	if !got.Equal(want) {
		t.Fatalf("patched tuple = %v", got)
	}
	if _, err := accountSchema.EncodeValue(2, "x"); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("EncodeValue on string column: %v", err)
	}
	if _, err := accountSchema.EncodeValue(1, int64(1)); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("EncodeValue type mismatch: %v", err)
	}
	if _, err := accountSchema.EncodeValue(9, int64(1)); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("EncodeValue bad column: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(i int64, fbits uint64, s string) bool {
		fv := math.Float64frombits(fbits)
		if math.IsNaN(fv) {
			fv = 0 // NaN != NaN breaks Equal; not a codec concern
		}
		if len(s) > math.MaxUint16 {
			s = s[:math.MaxUint16]
		}
		tup := Tuple{i, fv, s}
		enc, err := accountSchema.Encode(tup)
		if err != nil {
			return false
		}
		got, err := accountSchema.Decode(enc)
		return err == nil && got.Equal(tup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleCloneEqual(t *testing.T) {
	a := Tuple{int64(1), 2.0, "x"}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = int64(2)
	if a.Equal(b) {
		t.Fatal("clone aliases original")
	}
	if a.Equal(Tuple{int64(1), 2.0}) {
		t.Fatal("length mismatch reported equal")
	}
}

func TestColTypeString(t *testing.T) {
	if Int64.String() != "int64" || Float64.String() != "float64" || String.String() != "string" {
		t.Fatal("type names")
	}
	if ColType(9).String() != "coltype(9)" {
		t.Fatal("unknown type name")
	}
	if Int64.Fixed() != true || String.Fixed() != false {
		t.Fatal("Fixed()")
	}
}
