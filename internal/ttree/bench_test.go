package ttree

import "testing"

func benchTree(b *testing.B, order, prefill int) *Tree {
	b.Helper()
	p := newMapPager()
	tr, _, err := Create(p, order, cmpE, cmpK)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < prefill; k++ {
		if err := tr.Insert(entry(uint64(k), 0)); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func BenchmarkInsertOrder16(b *testing.B) {
	tr := benchTree(b, 16, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(entry(uint64(i), 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchOrder16(b *testing.B) {
	tr := benchTree(b, 16, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := false
		if err := tr.Search(uint64(i%10000), func(uint64) bool { found = true; return false }); err != nil {
			b.Fatal(err)
		}
		if !found {
			b.Fatal("miss")
		}
	}
}

func BenchmarkRange100(b *testing.B) {
	tr := benchTree(b, 16, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i % 9900)
		n := 0
		if err := tr.Range(lo, lo+99, func(uint64) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteInsertChurn(b *testing.B) {
	tr := benchTree(b, 16, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i % 10000)
		if err := tr.Delete(entry(k, 0)); err != nil {
			b.Fatal(err)
		}
		if err := tr.Insert(entry(k, 0)); err != nil {
			b.Fatal(err)
		}
	}
}
