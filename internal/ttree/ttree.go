// Package ttree implements the T-Tree index of Lehman & Carey's
// MM-DBMS ([Lehman 86c]), the index structure whose nodes are the
// "index components" that §2.3.2's index log records refer to. A T-Tree
// is an AVL-balanced binary tree whose nodes each hold an ordered array
// of entries; entries are packed entity addresses of relation tuples,
// and comparisons read the indexed tuple (the classic main-memory
// design: the index stores pointers, not keys).
//
// Nodes are entities: fixed-size byte records living in index-segment
// partitions, manipulated through a Pager that the transaction layer
// implements with REDO logging and undo tracking. A single index update
// therefore produces one log record per updated node, exactly as the
// paper describes.
package ttree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmdb/internal/addr"
)

// Pager is the storage interface the tree runs against. Implementations
// perform the physical mutation and handle REDO logging and undo.
type Pager interface {
	// Read returns the entity's bytes (valid until the next mutation).
	Read(a addr.EntityAddr) ([]byte, error)
	// Insert stores a new entity and returns its address.
	Insert(data []byte) (addr.EntityAddr, error)
	// Update replaces the entity's bytes.
	Update(a addr.EntityAddr, data []byte) error
	// Delete removes the entity.
	Delete(a addr.EntityAddr) error
}

// CompareEntries totally orders two stored entries (packed tuple
// addresses): first by indexed key value, tie-broken by address so that
// duplicates are distinguishable.
type CompareEntries func(a, b uint64) (int, error)

// CompareKey orders a search key against a stored entry by key value
// only (duplicates compare equal).
type CompareKey func(key any, entry uint64) (int, error)

// ErrNotFound is returned by Delete when the entry is absent.
var ErrNotFound = errors.New("ttree: entry not found")

// node is the in-memory form of a T-Tree node entity.
type node struct {
	left, right addr.EntityAddr
	height      int16
	entries     []uint64
}

const nodeHeaderSize = 8 + 8 + 2 + 2 // left, right, height, count

func marshalNode(n *node, order int) []byte {
	buf := make([]byte, nodeHeaderSize+8*order)
	binary.LittleEndian.PutUint64(buf[0:], n.left.Pack())
	binary.LittleEndian.PutUint64(buf[8:], n.right.Pack())
	binary.LittleEndian.PutUint16(buf[16:], uint16(n.height))
	binary.LittleEndian.PutUint16(buf[18:], uint16(len(n.entries)))
	for i, e := range n.entries {
		binary.LittleEndian.PutUint64(buf[nodeHeaderSize+8*i:], e)
	}
	return buf
}

func unmarshalNode(buf []byte) (*node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("ttree: corrupt node (%d bytes)", len(buf))
	}
	n := &node{
		left:   addr.Unpack(binary.LittleEndian.Uint64(buf[0:])),
		right:  addr.Unpack(binary.LittleEndian.Uint64(buf[8:])),
		height: int16(binary.LittleEndian.Uint16(buf[16:])),
	}
	count := int(binary.LittleEndian.Uint16(buf[18:]))
	if len(buf) < nodeHeaderSize+8*count {
		return nil, fmt.Errorf("ttree: corrupt node entries (%d of %d)", len(buf)-nodeHeaderSize, 8*count)
	}
	n.entries = make([]uint64, count)
	for i := range n.entries {
		n.entries[i] = binary.LittleEndian.Uint64(buf[nodeHeaderSize+8*i:])
	}
	return n, nil
}

// headerSize is the tree header entity: root(8) count(8) order(2).
const headerSize = 8 + 8 + 2

// Tree is a T-Tree rooted at a header entity. All mutating calls must
// be serialised by the caller (the transaction layer holds the index
// writer lock until commit; readers hold the index latch).
type Tree struct {
	pager  Pager
	header addr.EntityAddr
	order  int
	cmpE   CompareEntries
	cmpK   CompareKey
}

// Create initialises a new empty tree, storing its header through the
// pager, and returns the tree and the header's address.
func Create(p Pager, order int, cmpE CompareEntries, cmpK CompareKey) (*Tree, addr.EntityAddr, error) {
	if order < 2 {
		return nil, addr.Nil, errors.New("ttree: order must be >= 2")
	}
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(hdr[0:], addr.Nil.Pack())
	binary.LittleEndian.PutUint64(hdr[8:], 0)
	binary.LittleEndian.PutUint16(hdr[16:], uint16(order))
	ha, err := p.Insert(hdr)
	if err != nil {
		return nil, addr.Nil, err
	}
	return &Tree{pager: p, header: ha, order: order, cmpE: cmpE, cmpK: cmpK}, ha, nil
}

// Open attaches to an existing tree via its header address.
func Open(p Pager, header addr.EntityAddr, cmpE CompareEntries, cmpK CompareKey) (*Tree, error) {
	buf, err := p.Read(header)
	if err != nil {
		return nil, err
	}
	if len(buf) < headerSize {
		return nil, fmt.Errorf("ttree: corrupt header at %v", header)
	}
	order := int(binary.LittleEndian.Uint16(buf[16:]))
	if order < 2 {
		return nil, fmt.Errorf("ttree: corrupt header order %d", order)
	}
	return &Tree{pager: p, header: header, order: order, cmpE: cmpE, cmpK: cmpK}, nil
}

// view is a per-operation cache of nodes so that each node is written
// back at most once per operation.
type view struct {
	t      *Tree
	nodes  map[addr.EntityAddr]*node
	dirty  map[addr.EntityAddr]bool
	root   addr.EntityAddr
	count  uint64
	hdrMod bool
}

func (t *Tree) newView() (*view, error) {
	buf, err := t.pager.Read(t.header)
	if err != nil {
		return nil, err
	}
	return &view{
		t:     t,
		nodes: make(map[addr.EntityAddr]*node),
		dirty: make(map[addr.EntityAddr]bool),
		root:  addr.Unpack(binary.LittleEndian.Uint64(buf[0:])),
		count: binary.LittleEndian.Uint64(buf[8:]),
	}, nil
}

func (v *view) get(a addr.EntityAddr) (*node, error) {
	if n, ok := v.nodes[a]; ok {
		return n, nil
	}
	buf, err := v.t.pager.Read(a)
	if err != nil {
		return nil, err
	}
	n, err := unmarshalNode(buf)
	if err != nil {
		return nil, err
	}
	v.nodes[a] = n
	return n, nil
}

func (v *view) mark(a addr.EntityAddr) { v.dirty[a] = true }

func (v *view) create(n *node) (addr.EntityAddr, error) {
	a, err := v.t.pager.Insert(marshalNode(n, v.t.order))
	if err != nil {
		return addr.Nil, err
	}
	v.nodes[a] = n
	return a, nil
}

func (v *view) free(a addr.EntityAddr) error {
	delete(v.nodes, a)
	delete(v.dirty, a)
	return v.t.pager.Delete(a)
}

// flush writes every dirty node and, if changed, the header.
func (v *view) flush() error {
	for a := range v.dirty {
		n, ok := v.nodes[a]
		if !ok {
			continue // freed after being dirtied
		}
		if err := v.t.pager.Update(a, marshalNode(n, v.t.order)); err != nil {
			return err
		}
	}
	if v.hdrMod {
		hdr := make([]byte, headerSize)
		binary.LittleEndian.PutUint64(hdr[0:], v.root.Pack())
		binary.LittleEndian.PutUint64(hdr[8:], v.count)
		binary.LittleEndian.PutUint16(hdr[16:], uint16(v.t.order))
		if err := v.t.pager.Update(v.t.header, hdr); err != nil {
			return err
		}
	}
	return nil
}

func (v *view) heightOf(a addr.EntityAddr) (int16, error) {
	if a.IsNil() {
		return 0, nil
	}
	n, err := v.get(a)
	if err != nil {
		return 0, err
	}
	return n.height, nil
}

func (v *view) fixHeight(a addr.EntityAddr, n *node) (int16, error) {
	lh, err := v.heightOf(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := v.heightOf(n.right)
	if err != nil {
		return 0, err
	}
	h := lh
	if rh > h {
		h = rh
	}
	h++
	if h != n.height {
		n.height = h
		v.mark(a)
	}
	return h, nil
}

// rebalance applies AVL rotations at a if needed and returns the
// (possibly new) subtree root.
func (v *view) rebalance(a addr.EntityAddr) (addr.EntityAddr, error) {
	n, err := v.get(a)
	if err != nil {
		return addr.Nil, err
	}
	lh, err := v.heightOf(n.left)
	if err != nil {
		return addr.Nil, err
	}
	rh, err := v.heightOf(n.right)
	if err != nil {
		return addr.Nil, err
	}
	switch {
	case lh-rh > 1:
		l, err := v.get(n.left)
		if err != nil {
			return addr.Nil, err
		}
		llh, err := v.heightOf(l.left)
		if err != nil {
			return addr.Nil, err
		}
		lrh, err := v.heightOf(l.right)
		if err != nil {
			return addr.Nil, err
		}
		if lrh > llh {
			nl, err := v.rotateLeft(n.left)
			if err != nil {
				return addr.Nil, err
			}
			n.left = nl
			v.mark(a)
		}
		return v.rotateRight(a)
	case rh-lh > 1:
		r, err := v.get(n.right)
		if err != nil {
			return addr.Nil, err
		}
		rlh, err := v.heightOf(r.left)
		if err != nil {
			return addr.Nil, err
		}
		rrh, err := v.heightOf(r.right)
		if err != nil {
			return addr.Nil, err
		}
		if rlh > rrh {
			nr, err := v.rotateRight(n.right)
			if err != nil {
				return addr.Nil, err
			}
			n.right = nr
			v.mark(a)
		}
		return v.rotateLeft(a)
	default:
		if _, err := v.fixHeight(a, n); err != nil {
			return addr.Nil, err
		}
		return a, nil
	}
}

func (v *view) rotateRight(a addr.EntityAddr) (addr.EntityAddr, error) {
	n, err := v.get(a)
	if err != nil {
		return addr.Nil, err
	}
	la := n.left
	l, err := v.get(la)
	if err != nil {
		return addr.Nil, err
	}
	n.left = l.right
	l.right = a
	v.mark(a)
	v.mark(la)
	if _, err := v.fixHeight(a, n); err != nil {
		return addr.Nil, err
	}
	if _, err := v.fixHeight(la, l); err != nil {
		return addr.Nil, err
	}
	return la, nil
}

func (v *view) rotateLeft(a addr.EntityAddr) (addr.EntityAddr, error) {
	n, err := v.get(a)
	if err != nil {
		return addr.Nil, err
	}
	ra := n.right
	r, err := v.get(ra)
	if err != nil {
		return addr.Nil, err
	}
	n.right = r.left
	r.left = a
	v.mark(a)
	v.mark(ra)
	if _, err := v.fixHeight(a, n); err != nil {
		return addr.Nil, err
	}
	if _, err := v.fixHeight(ra, r); err != nil {
		return addr.Nil, err
	}
	return ra, nil
}

// insertSorted places e into n's ordered entry array.
func (v *view) insertSorted(a addr.EntityAddr, n *node, e uint64) error {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := v.t.cmpE(e, n.entries[mid])
		if err != nil {
			return err
		}
		if c < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	n.entries = append(n.entries, 0)
	copy(n.entries[lo+1:], n.entries[lo:])
	n.entries[lo] = e
	v.mark(a)
	return nil
}

// Insert adds entry e (a packed tuple address) to the tree.
func (t *Tree) Insert(e uint64) error {
	v, err := t.newView()
	if err != nil {
		return err
	}
	nr, err := v.insert(v.root, e)
	if err != nil {
		return err
	}
	if nr != v.root {
		v.root = nr
	}
	v.count++
	v.hdrMod = true
	return v.flush()
}

func (v *view) insert(a addr.EntityAddr, e uint64) (addr.EntityAddr, error) {
	if a.IsNil() {
		return v.create(&node{height: 1, entries: []uint64{e}})
	}
	n, err := v.get(a)
	if err != nil {
		return addr.Nil, err
	}
	cmin, err := v.t.cmpE(e, n.entries[0])
	if err != nil {
		return addr.Nil, err
	}
	cmax, err := v.t.cmpE(e, n.entries[len(n.entries)-1])
	if err != nil {
		return addr.Nil, err
	}
	switch {
	case cmin < 0 && !n.left.IsNil():
		nl, err := v.insert(n.left, e)
		if err != nil {
			return addr.Nil, err
		}
		if nl != n.left {
			n.left = nl
			v.mark(a)
		}
	case cmax > 0 && !n.right.IsNil():
		nr, err := v.insert(n.right, e)
		if err != nil {
			return addr.Nil, err
		}
		if nr != n.right {
			n.right = nr
			v.mark(a)
		}
	default:
		// This node bounds e, or it is the last node on the search
		// path (missing child on e's side).
		if len(n.entries) < v.t.order {
			if err := v.insertSorted(a, n, e); err != nil {
				return addr.Nil, err
			}
			return a, nil // no height change
		}
		// Node full. Per the T-Tree algorithm: if e bounds within the
		// node, evict the minimum to make room and push the evicted
		// minimum into the left subtree; a new minimum/maximum goes
		// straight to the missing-child side.
		switch {
		case cmin < 0: // new global path minimum: new left leaf
			nl, err := v.insert(n.left, e) // n.left is Nil here
			if err != nil {
				return addr.Nil, err
			}
			n.left = nl
			v.mark(a)
		case cmax > 0: // new path maximum: new right leaf
			nr, err := v.insert(n.right, e)
			if err != nil {
				return addr.Nil, err
			}
			n.right = nr
			v.mark(a)
		default:
			evicted := n.entries[0]
			copy(n.entries, n.entries[1:])
			n.entries[len(n.entries)-1] = 0
			n.entries = n.entries[:len(n.entries)-1]
			if err := v.insertSorted(a, n, e); err != nil {
				return addr.Nil, err
			}
			nl, err := v.insert(n.left, evicted)
			if err != nil {
				return addr.Nil, err
			}
			if nl != n.left {
				n.left = nl
				v.mark(a)
			}
		}
	}
	return v.rebalance(a)
}

// Delete removes entry e from the tree; ErrNotFound if absent.
func (t *Tree) Delete(e uint64) error {
	v, err := t.newView()
	if err != nil {
		return err
	}
	nr, found, err := v.remove(v.root, e)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	v.root = nr
	v.count--
	v.hdrMod = true
	return v.flush()
}

func (v *view) remove(a addr.EntityAddr, e uint64) (addr.EntityAddr, bool, error) {
	if a.IsNil() {
		return addr.Nil, false, nil
	}
	n, err := v.get(a)
	if err != nil {
		return addr.Nil, false, err
	}
	cmin, err := v.t.cmpE(e, n.entries[0])
	if err != nil {
		return addr.Nil, false, err
	}
	cmax, err := v.t.cmpE(e, n.entries[len(n.entries)-1])
	if err != nil {
		return addr.Nil, false, err
	}
	switch {
	case cmin < 0:
		nl, found, err := v.remove(n.left, e)
		if err != nil || !found {
			return a, found, err
		}
		if nl != n.left {
			n.left = nl
			v.mark(a)
		}
	case cmax > 0:
		nr, found, err := v.remove(n.right, e)
		if err != nil || !found {
			return a, found, err
		}
		if nr != n.right {
			n.right = nr
			v.mark(a)
		}
	default:
		// Bounded: e must be in this node if present.
		idx := -1
		for i, x := range n.entries {
			if x == e {
				idx = i
				break
			}
		}
		if idx < 0 {
			return a, false, nil
		}
		copy(n.entries[idx:], n.entries[idx+1:])
		n.entries = n.entries[:len(n.entries)-1]
		v.mark(a)
		// Refill an underflowing internal node from a subtree so that
		// internal nodes stay at least half full.
		minFill := (v.t.order + 1) / 2
		if len(n.entries) < minFill && !n.left.IsNil() {
			gl, nl, err := v.removeMax(n.left)
			if err != nil {
				return addr.Nil, false, err
			}
			if nl != n.left {
				n.left = nl
			}
			n.entries = append([]uint64{gl}, n.entries...)
			v.mark(a)
		} else if len(n.entries) < minFill && !n.right.IsNil() {
			sm, nr, err := v.removeMin(n.right)
			if err != nil {
				return addr.Nil, false, err
			}
			if nr != n.right {
				n.right = nr
			}
			n.entries = append(n.entries, sm)
			v.mark(a)
		}
		if len(n.entries) == 0 {
			// Empty node: splice it out. A node emptied by the refill
			// rules has at most one child.
			child := n.left
			if child.IsNil() {
				child = n.right
			}
			if err := v.free(a); err != nil {
				return addr.Nil, false, err
			}
			return child, true, nil
		}
	}
	na, err := v.rebalance(a)
	return na, true, err
}

// removeMax extracts the greatest entry of the subtree rooted at a,
// returning it and the new subtree root.
func (v *view) removeMax(a addr.EntityAddr) (uint64, addr.EntityAddr, error) {
	n, err := v.get(a)
	if err != nil {
		return 0, addr.Nil, err
	}
	if !n.right.IsNil() {
		e, nr, err := v.removeMax(n.right)
		if err != nil {
			return 0, addr.Nil, err
		}
		if nr != n.right {
			n.right = nr
			v.mark(a)
		}
		na, err := v.rebalance(a)
		return e, na, err
	}
	e := n.entries[len(n.entries)-1]
	n.entries = n.entries[:len(n.entries)-1]
	v.mark(a)
	if len(n.entries) == 0 {
		child := n.left
		if err := v.free(a); err != nil {
			return 0, addr.Nil, err
		}
		return e, child, nil
	}
	na, err := v.rebalance(a)
	return e, na, err
}

// removeMin extracts the smallest entry of the subtree rooted at a.
func (v *view) removeMin(a addr.EntityAddr) (uint64, addr.EntityAddr, error) {
	n, err := v.get(a)
	if err != nil {
		return 0, addr.Nil, err
	}
	if !n.left.IsNil() {
		e, nl, err := v.removeMin(n.left)
		if err != nil {
			return 0, addr.Nil, err
		}
		if nl != n.left {
			n.left = nl
			v.mark(a)
		}
		na, err := v.rebalance(a)
		return e, na, err
	}
	e := n.entries[0]
	copy(n.entries, n.entries[1:])
	n.entries = n.entries[:len(n.entries)-1]
	v.mark(a)
	if len(n.entries) == 0 {
		child := n.right
		if err := v.free(a); err != nil {
			return 0, addr.Nil, err
		}
		return e, child, nil
	}
	na, err := v.rebalance(a)
	return e, na, err
}

// Search calls fn with every entry whose key compares equal to key, in
// entry order; fn returns false to stop. Read-only.
func (t *Tree) Search(key any, fn func(entry uint64) bool) error {
	v, err := t.newView()
	if err != nil {
		return err
	}
	_, err = v.scan(v.root, key, key, fn)
	return err
}

// Range calls fn for every entry with lo <= key <= hi in ascending
// order; nil bounds are unbounded. fn returns false to stop.
func (t *Tree) Range(lo, hi any, fn func(entry uint64) bool) error {
	v, err := t.newView()
	if err != nil {
		return err
	}
	_, err = v.scan(v.root, lo, hi, fn)
	return err
}

// scan walks the subtree in order, pruning with the bounds. Returns
// false when fn stopped the scan.
func (v *view) scan(a addr.EntityAddr, lo, hi any, fn func(uint64) bool) (bool, error) {
	if a.IsNil() {
		return true, nil
	}
	n, err := v.get(a)
	if err != nil {
		return false, err
	}
	// Prune left subtree when node minimum already >= lo is false.
	goLeft := true
	if lo != nil {
		c, err := v.t.cmpK(lo, n.entries[0])
		if err != nil {
			return false, err
		}
		// Descend when lo <= node min: duplicates of the minimum key
		// may extend into the left subtree.
		goLeft = c <= 0
	}
	if goLeft {
		cont, err := v.scan(n.left, lo, hi, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	for _, e := range n.entries {
		if lo != nil {
			c, err := v.t.cmpK(lo, e)
			if err != nil {
				return false, err
			}
			if c > 0 {
				continue
			}
		}
		if hi != nil {
			c, err := v.t.cmpK(hi, e)
			if err != nil {
				return false, err
			}
			if c < 0 {
				return false, nil
			}
		}
		if !fn(e) {
			return false, nil
		}
	}
	goRight := true
	if hi != nil {
		c, err := v.t.cmpK(hi, n.entries[len(n.entries)-1])
		if err != nil {
			return false, err
		}
		// Descend when hi >= node max: duplicates of the maximum key
		// may extend into the right subtree.
		goRight = c >= 0
	}
	if goRight {
		return v.scan(n.right, lo, hi, fn)
	}
	return true, nil
}

// Count returns the number of entries in the tree.
func (t *Tree) Count() (uint64, error) {
	v, err := t.newView()
	if err != nil {
		return 0, err
	}
	return v.count, nil
}

// Header returns the tree's header entity address.
func (t *Tree) Header() addr.EntityAddr { return t.header }

// Check verifies the structural invariants — entry order within and
// across nodes, AVL balance, stored heights, node fill, and the entry
// count — returning a descriptive error on the first violation.
func (t *Tree) Check() error {
	v, err := t.newView()
	if err != nil {
		return err
	}
	var prev *uint64
	var walked uint64
	var walk func(a addr.EntityAddr) (int16, error)
	walk = func(a addr.EntityAddr) (int16, error) {
		if a.IsNil() {
			return 0, nil
		}
		n, err := v.get(a)
		if err != nil {
			return 0, err
		}
		if len(n.entries) == 0 {
			return 0, fmt.Errorf("ttree: empty node at %v", a)
		}
		if len(n.entries) > t.order {
			return 0, fmt.Errorf("ttree: overfull node at %v (%d > %d)", a, len(n.entries), t.order)
		}
		lh, err := walk(n.left)
		if err != nil {
			return 0, err
		}
		for i, e := range n.entries {
			if prev != nil {
				c, err := t.cmpE(*prev, e)
				if err != nil {
					return 0, err
				}
				if c >= 0 {
					return 0, fmt.Errorf("ttree: order violation at %v entry %d", a, i)
				}
			}
			e := e
			prev = &e
			walked++
		}
		rh, err := walk(n.right)
		if err != nil {
			return 0, err
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			return 0, fmt.Errorf("ttree: stored height %d != actual %d at %v", n.height, h, a)
		}
		if d := lh - rh; d < -1 || d > 1 {
			return 0, fmt.Errorf("ttree: AVL violation at %v (balance %d)", a, d)
		}
		return h, nil
	}
	if _, err := walk(v.root); err != nil {
		return err
	}
	if walked != v.count {
		return fmt.Errorf("ttree: header count %d != walked %d", v.count, walked)
	}
	return nil
}
