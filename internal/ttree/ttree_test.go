package ttree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mmdb/internal/addr"
)

// mapPager is an in-memory Pager for exercising the tree algorithm in
// isolation from the partition machinery.
type mapPager struct {
	data map[addr.EntityAddr][]byte
	next uint32
	// op counters for write-amplification assertions
	inserts, updates, deletes int
}

func newMapPager() *mapPager {
	return &mapPager{data: make(map[addr.EntityAddr][]byte)}
}

func (p *mapPager) Read(a addr.EntityAddr) ([]byte, error) {
	d, ok := p.data[a]
	if !ok {
		return nil, fmt.Errorf("mapPager: no entity %v", a)
	}
	return d, nil
}

func (p *mapPager) Insert(data []byte) (addr.EntityAddr, error) {
	p.next++
	a := addr.EntityAddr{Segment: 5, Part: addr.PartitionNum(p.next >> 12), Slot: addr.Slot(p.next & 0xFFF)}
	p.data[a] = append([]byte(nil), data...)
	p.inserts++
	return a, nil
}

func (p *mapPager) Update(a addr.EntityAddr, data []byte) error {
	if _, ok := p.data[a]; !ok {
		return fmt.Errorf("mapPager: update of missing %v", a)
	}
	p.data[a] = append([]byte(nil), data...)
	p.updates++
	return nil
}

func (p *mapPager) Delete(a addr.EntityAddr) error {
	if _, ok := p.data[a]; !ok {
		return fmt.Errorf("mapPager: delete of missing %v", a)
	}
	delete(p.data, a)
	p.deletes++
	return nil
}

// Test entries encode key*1000 + uid so duplicates (same key, distinct
// uid) are representable.
func entry(key, uid uint64) uint64 { return key*1000 + uid }

func cmpE(a, b uint64) (int, error) {
	switch {
	case a < b:
		return -1, nil
	case a > b:
		return 1, nil
	default:
		return 0, nil
	}
}

func cmpK(key any, e uint64) (int, error) {
	k := key.(uint64)
	ek := e / 1000
	switch {
	case k < ek:
		return -1, nil
	case k > ek:
		return 1, nil
	default:
		return 0, nil
	}
}

func newTestTree(t *testing.T, order int) (*Tree, *mapPager) {
	t.Helper()
	p := newMapPager()
	tr, _, err := Create(p, order, cmpE, cmpK)
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

func collect(t *testing.T, tr *Tree, lo, hi any) []uint64 {
	t.Helper()
	var out []uint64
	if err := tr.Range(lo, hi, func(e uint64) bool {
		out = append(out, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCreateOpenEmpty(t *testing.T) {
	p := newMapPager()
	tr, ha, err := Create(p, 8, cmpE, cmpK)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Count(); n != 0 {
		t.Fatalf("Count = %d", n)
	}
	if got := collect(t, tr, nil, nil); len(got) != 0 {
		t.Fatalf("empty scan = %v", got)
	}
	tr2, err := Open(p, ha, cmpE, cmpK)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.order != 8 {
		t.Fatalf("reopened order = %d", tr2.order)
	}
	if _, _, err := Create(p, 1, cmpE, cmpK); err == nil {
		t.Fatal("order 1 accepted")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	for _, k := range []uint64{5, 3, 8, 1, 9, 7, 2, 6, 4} {
		if err := tr.Insert(entry(k, 0)); err != nil {
			t.Fatal(err)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("after insert %d: %v", k, err)
		}
	}
	var hits []uint64
	if err := tr.Search(uint64(7), func(e uint64) bool { hits = append(hits, e); return true }); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != entry(7, 0) {
		t.Fatalf("Search(7) = %v", hits)
	}
	if err := tr.Search(uint64(99), func(e uint64) bool { t.Error("phantom hit"); return true }); err != nil {
		t.Fatal(err)
	}
	got := collect(t, tr, nil, nil)
	if len(got) != 9 {
		t.Fatalf("full scan %d entries", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("scan unsorted: %v", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	// 20 duplicates of key 5 spread across many nodes, plus noise.
	for uid := uint64(0); uid < 20; uid++ {
		if err := tr.Insert(entry(5, uid)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []uint64{1, 2, 3, 4, 6, 7, 8} {
		if err := tr.Insert(entry(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	var hits []uint64
	if err := tr.Search(uint64(5), func(e uint64) bool { hits = append(hits, e); return true }); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 20 {
		t.Fatalf("Search(5) found %d of 20 duplicates", len(hits))
	}
	// Delete a specific duplicate, not its siblings.
	if err := tr.Delete(entry(5, 7)); err != nil {
		t.Fatal(err)
	}
	hits = hits[:0]
	if err := tr.Search(uint64(5), func(e uint64) bool { hits = append(hits, e); return true }); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 19 {
		t.Fatalf("after delete, %d duplicates", len(hits))
	}
	for _, h := range hits {
		if h == entry(5, 7) {
			t.Fatal("deleted duplicate still present")
		}
	}
}

func TestRangeBounds(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	for k := uint64(1); k <= 30; k++ {
		if err := tr.Insert(entry(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, tr, uint64(10), uint64(20))
	if len(got) != 11 || got[0] != entry(10, 0) || got[10] != entry(20, 0) {
		t.Fatalf("Range(10,20) = %v", got)
	}
	// Half-open behaviours via nil bounds.
	if got := collect(t, tr, uint64(28), nil); len(got) != 3 {
		t.Fatalf("Range(28,nil) = %v", got)
	}
	if got := collect(t, tr, nil, uint64(3)); len(got) != 3 {
		t.Fatalf("Range(nil,3) = %v", got)
	}
	// Early stop.
	n := 0
	if err := tr.Range(nil, nil, func(uint64) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop after %d", n)
	}
}

func TestDeleteNotFound(t *testing.T) {
	tr, _ := newTestTree(t, 4)
	if err := tr.Delete(entry(1, 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty delete: %v", err)
	}
	if err := tr.Insert(entry(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(entry(2, 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing delete: %v", err)
	}
}

func TestDeleteToEmptyFreesNodes(t *testing.T) {
	tr, p := newTestTree(t, 4)
	var es []uint64
	for k := uint64(1); k <= 50; k++ {
		e := entry(k, 0)
		es = append(es, e)
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range es {
		if err := tr.Delete(e); err != nil {
			t.Fatal(err)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("after delete %d: %v", e, err)
		}
	}
	if n, _ := tr.Count(); n != 0 {
		t.Fatalf("Count = %d", n)
	}
	// Only the header entity should remain.
	if len(p.data) != 1 {
		t.Fatalf("%d entities leak after emptying tree", len(p.data))
	}
}

func TestAscendingDescendingInserts(t *testing.T) {
	// Sorted insert orders are the classic AVL stress.
	for name, gen := range map[string]func(i uint64) uint64{
		"ascending":  func(i uint64) uint64 { return i },
		"descending": func(i uint64) uint64 { return 1000 - i },
	} {
		tr, _ := newTestTree(t, 8)
		for i := uint64(1); i <= 500; i++ {
			if err := tr.Insert(entry(gen(i), 0)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := collect(t, tr, nil, nil); len(got) != 500 {
			t.Fatalf("%s: %d entries", name, len(got))
		}
	}
}

func TestModelEquivalenceRandomOps(t *testing.T) {
	for _, order := range []int{2, 4, 16} {
		order := order
		t.Run(fmt.Sprintf("order%d", order), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(order) * 77))
			tr, _ := newTestTree(t, order)
			model := map[uint64]bool{}
			for step := 0; step < 4000; step++ {
				e := entry(uint64(rng.Intn(200)), uint64(rng.Intn(5)))
				if model[e] || rng.Intn(3) == 0 && len(model) > 0 {
					// delete something (maybe e, maybe absent)
					if err := tr.Delete(e); err != nil {
						if !errors.Is(err, ErrNotFound) {
							t.Fatal(err)
						}
						if model[e] {
							t.Fatalf("step %d: present entry reported NotFound", step)
						}
					} else if !model[e] {
						t.Fatalf("step %d: absent entry deleted", step)
					}
					delete(model, e)
				} else {
					if err := tr.Insert(e); err != nil {
						t.Fatal(err)
					}
					model[e] = true
				}
				if step%250 == 0 {
					if err := tr.Check(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			var want []uint64
			for e := range model {
				want = append(want, e)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := collect(t, tr, nil, nil)
			if len(got) != len(want) {
				t.Fatalf("tree has %d entries, model %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("entry %d: tree %d, model %d", i, got[i], want[i])
				}
			}
			if n, _ := tr.Count(); n != uint64(len(want)) {
				t.Fatalf("Count = %d, want %d", n, len(want))
			}
		})
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	p := newMapPager()
	tr, ha, err := Create(p, 6, cmpE, cmpK)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		if err := tr.Insert(entry(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-open over the same pager (as recovery does after replaying
	// node images) and verify contents.
	tr2, err := Open(p, ha, cmpE, cmpK)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, tr2, uint64(40), uint64(42)); len(got) != 3 {
		t.Fatalf("reopened range = %v", got)
	}
}

func TestWriteAmplificationBounded(t *testing.T) {
	// One insert into a tree of moderate depth should touch O(log n)
	// nodes, not O(n): this guards the view's dirty-tracking.
	tr, p := newTestTree(t, 8)
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(entry(k*2, 0)); err != nil {
			t.Fatal(err)
		}
	}
	p.updates = 0
	p.inserts = 0
	if err := tr.Insert(entry(1999, 0)); err != nil {
		t.Fatal(err)
	}
	if p.updates+p.inserts > 25 {
		t.Fatalf("single insert wrote %d nodes", p.updates+p.inserts)
	}
}
