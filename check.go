package mmdb

import (
	"fmt"

	"mmdb/internal/addr"
	"mmdb/internal/catalog"
	"mmdb/internal/txn"
)

// CheckConsistency performs an offline-style integrity audit of the
// whole database (an "fsck"): catalog descriptors decode and agree with
// the volatile maps; every tuple decodes under its relation's schema;
// every index satisfies its structural invariants; and every index is
// exactly consistent with its relation's tuples (no missing entries, no
// phantoms). It must be called while no transactions are in flight.
//
// The property-based crash tests call this after every recovery, so a
// recovery bug that corrupts any of these invariants fails loudly.
func (db *DB) CheckConsistency() error {
	db.mu.RLock()
	rels := make([]*Relation, 0, len(db.relByID))
	for _, r := range db.relByID {
		rels = append(rels, r)
	}
	db.mu.RUnlock()

	for _, rel := range rels {
		if err := db.checkRelation(rel); err != nil {
			return fmt.Errorf("mmdb: consistency: relation %q: %w", rel.name, err)
		}
	}
	return nil
}

func (db *DB) checkRelation(rel *Relation) error {
	// Catalog descriptor must decode and match the handle.
	db.mu.RLock()
	da := db.relDescAddr[rel.relID]
	db.mu.RUnlock()
	rp := txn.ReadPager{Store: db.store}
	raw, err := rp.Read(da)
	if err != nil {
		return fmt.Errorf("descriptor unreadable: %w", err)
	}
	desc, err := catalog.DecodeRelation(raw)
	if err != nil {
		return fmt.Errorf("descriptor corrupt: %w", err)
	}
	if desc.RelID != rel.relID || desc.Seg != rel.seg || desc.Name != rel.name {
		return fmt.Errorf("descriptor mismatch: %+v vs handle(%d,%d,%q)", desc, rel.relID, rel.seg, rel.name)
	}

	// Every tuple decodes; collect the live set.
	live := map[uint64]bool{}
	for _, ps := range desc.Parts {
		pid := addr.PartitionID{Segment: rel.seg, Part: ps.Part}
		p, err := db.store.Partition(pid)
		if err != nil {
			return fmt.Errorf("partition %v: %w", pid, err)
		}
		var scanErr error
		p.Latch()
		p.Slots(func(s addr.Slot, data []byte) bool {
			if _, err := rel.schema.Decode(data); err != nil {
				scanErr = fmt.Errorf("tuple %v.%d corrupt: %w", pid, s, err)
				return false
			}
			live[addr.EntityAddr{Segment: rel.seg, Part: ps.Part, Slot: s}.Pack()] = true
			return true
		})
		p.Unlatch()
		if scanErr != nil {
			return scanErr
		}
	}

	// Indexes: structural invariants plus exact agreement with live.
	for _, idx := range rel.Indexes() {
		if err := db.checkIndex(idx, live); err != nil {
			return fmt.Errorf("index %q: %w", idx.name, err)
		}
	}
	return nil
}

func (db *DB) checkIndex(idx *Index, live map[uint64]bool) error {
	idx.latch.RLock()
	defer idx.latch.RUnlock()
	pager := txn.ReadPager{Store: db.store}
	seen := map[uint64]bool{}
	collect := func(e uint64) error {
		if !live[e] {
			return fmt.Errorf("phantom entry %v", addr.Unpack(e))
		}
		if seen[e] {
			return fmt.Errorf("duplicate entry %v", addr.Unpack(e))
		}
		seen[e] = true
		return nil
	}
	switch idx.kind {
	case catalog.KindTTree:
		tr, err := idx.tree(pager)
		if err != nil {
			return err
		}
		if err := tr.Check(); err != nil {
			return err
		}
		var walkErr error
		if err := tr.Range(nil, nil, func(e uint64) bool {
			walkErr = collect(e)
			return walkErr == nil
		}); err != nil {
			return err
		}
		if walkErr != nil {
			return walkErr
		}
	case catalog.KindLinHash:
		tb, err := idx.table(pager)
		if err != nil {
			return err
		}
		if err := tb.Check(); err != nil {
			return err
		}
		var walkErr error
		if err := tb.Scan(func(e uint64) bool {
			walkErr = collect(e)
			return walkErr == nil
		}); err != nil {
			return err
		}
		if walkErr != nil {
			return walkErr
		}
	default:
		return fmt.Errorf("unknown kind %v", idx.kind)
	}
	if len(seen) != len(live) {
		return fmt.Errorf("index has %d entries, relation has %d tuples", len(seen), len(live))
	}
	return nil
}
