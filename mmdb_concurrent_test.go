package mmdb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"mmdb/internal/heap"
)

// TestCheckpointsUnderConcurrentWriters hammers a relation from several
// goroutines while the low update threshold keeps checkpoint
// transactions running concurrently (taking relation read locks against
// the writers' IX locks, fencing bins mid-stream). After the storm: a
// full consistency audit, then a crash, then exact model equivalence.
func TestCheckpointsUnderConcurrentWriters(t *testing.T) {
	cfg := testConfig()
	cfg.UpdateThreshold = 32
	cfg.LogWindowPages = 128
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.CreateRelation("hot", acctSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(rel, "by_id", "id", KindTTree, 8); err != nil {
		t.Fatal(err)
	}

	// Seed rows that the writers will update.
	const seedRows = 64
	ids := make([]RowID, seedRows)
	seed := db.Begin()
	for i := range ids {
		ids[i], err = seed.Insert(rel, heap.Tuple{int64(i), 0.0, "seed"})
		if err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, seed)

	// Concurrent writers: each owns a disjoint slice of rows (no
	// deadlocks by construction) and records its committed final
	// values.
	const writers = 4
	finals := make([]map[int]float64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		finals[w] = map[int]float64{}
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			lo := w * seedRows / writers
			hi := (w + 1) * seedRows / writers
			for i := 0; i < 150; i++ {
				row := lo + rng.Intn(hi-lo)
				val := float64(w*100000 + i)
				tx := db.Begin()
				if err := tx.Update(rel, ids[row], map[string]any{"balance": val}); err != nil {
					if errors.Is(err, ErrDeadlock) {
						_ = tx.Abort()
						continue
					}
					t.Error(err)
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				finals[w][row] = val
			}
		}(w)
	}
	wg.Wait()
	db.WaitIdle()
	if db.Stats().CkptCompleted == 0 {
		t.Fatal("no checkpoints completed under load")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// Crash and compare against the writers' records.
	db2 := crashAndRecover(t, db, cfg)
	defer db2.Close()
	rel2, err := db2.GetRelation("hot")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	tx := db2.Begin()
	defer tx.Abort()
	for w := 0; w < writers; w++ {
		for row, val := range finals[w] {
			got, err := tx.Get(rel2, ids[row])
			if err != nil {
				t.Fatalf("row %d: %v", row, err)
			}
			if got[1].(float64) != val {
				t.Fatalf("row %d = %v, want %v", row, got[1], val)
			}
		}
	}
}

// TestConcurrentReadersDuringCheckpoints verifies reader transactions
// (IS + S locks) interleave with checkpoint transactions' relation read
// locks without distortion.
func TestConcurrentReadersDuringCheckpoints(t *testing.T) {
	cfg := testConfig()
	cfg.UpdateThreshold = 24
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rel, _ := db.CreateRelation("r", acctSchema)
	var ids []RowID
	seed := db.Begin()
	for i := 0; i < 40; i++ {
		id, err := seed.Insert(rel, heap.Tuple{int64(i), float64(i), "x"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	mustCommit(t, seed)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Readers verify invariant: balance always equals id.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				id := ids[rng.Intn(len(ids))]
				tup, err := tx.Get(rel, id)
				if err != nil {
					t.Error(err)
					_ = tx.Abort()
					return
				}
				if tup[1].(float64) != float64(tup[0].(int64)) {
					t.Errorf("invariant broken: %v", tup)
				}
				_ = tx.Abort()
			}
		}(r)
	}
	// A writer keeps the invariant while generating checkpoint load:
	// each update sets both columns together.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			row := rng.Intn(len(ids))
			k := int64(1000 + i)
			tx := db.Begin()
			if err := tx.Update(rel, ids[row], map[string]any{"id": k, "balance": float64(k)}); err != nil {
				if errors.Is(err, ErrDeadlock) {
					_ = tx.Abort()
					continue
				}
				t.Error(err)
				_ = tx.Abort()
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	db.WaitIdle()
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().CkptCompleted == 0 {
		t.Log("warning: no checkpoints completed during reader/writer storm")
	}
}
