package mmdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mmdb/internal/heap"
)

func TestDropRelation(t *testing.T) {
	db := openTestDB(t)
	defer db.Close()
	rel, _ := db.CreateRelation("doomed", acctSchema)
	if _, err := db.CreateIndex(rel, "by_id", "id", KindTTree, 8); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 30; i++ {
		if _, err := tx.Insert(rel, heap.Tuple{int64(i), 1.0, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	db.WaitIdle()
	if err := db.DropRelation("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetRelation("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped relation still visible: %v", err)
	}
	if err := db.DropRelation("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	// The name can be reused, and survives a crash as the new
	// relation only.
	rel2, err := db.CreateRelation("doomed", acctSchema)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if _, err := tx2.Insert(rel2, heap.Tuple{int64(99), 9.0, "new"}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)
	db.WaitIdle()
	db2 := crashAndRecover(t, db, testConfig())
	defer db2.Close()
	rel3, err := db2.GetRelation("doomed")
	if err != nil {
		t.Fatal(err)
	}
	tx3 := db2.Begin()
	defer tx3.Abort()
	n, err := tx3.Count(rel3)
	if err != nil || n != 1 {
		t.Fatalf("recovered reused relation has %d rows, %v", n, err)
	}
}

func TestDropIndex(t *testing.T) {
	db := openTestDB(t)
	defer db.Close()
	rel, _ := db.CreateRelation("r", acctSchema)
	if _, err := db.CreateIndex(rel, "by_id", "id", KindTTree, 8); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	id, _ := tx.Insert(rel, heap.Tuple{int64(1), 1.0, "x"})
	mustCommit(t, tx)
	if err := db.DropIndex(rel, "by_id"); err != nil {
		t.Fatal(err)
	}
	if rel.Index("by_id") != nil {
		t.Fatal("index still attached")
	}
	if err := db.DropIndex(rel, "by_id"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	// Data unaffected; updates no longer maintain the index.
	tx2 := db.Begin()
	if err := tx2.Update(rel, id, map[string]any{"id": int64(2)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)
	// Index can be recreated and is rebuilt from existing rows.
	idx, err := db.CreateIndex(rel, "by_id", "id", KindTTree, 8)
	if err != nil {
		t.Fatal(err)
	}
	tx3 := db.Begin()
	defer tx3.Abort()
	hits := 0
	if err := tx3.IndexLookup(idx, int64(2), func(RowID, heap.Tuple) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("recreated index hits = %d", hits)
	}
}

func TestPreload(t *testing.T) {
	db := openTestDB(t)
	rel, _ := db.CreateRelation("r", acctSchema)
	if _, err := db.CreateIndex(rel, "by_id", "id", KindTTree, 8); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 40; i++ {
		if _, err := tx.Insert(rel, heap.Tuple{int64(i), 0.0, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	db.WaitIdle()
	db2 := crashAndRecover(t, db, testConfig())
	defer db2.Close()
	rel2, _ := db2.GetRelation("r")
	before := db2.Stats().PartsRecovered
	// Method 1: predeclare — everything resident before the txn runs.
	if err := db2.Preload(rel2); err != nil {
		t.Fatal(err)
	}
	after := db2.Stats().PartsRecovered
	if after <= before {
		t.Fatal("preload recovered nothing")
	}
	// Subsequent access demands no further recovery.
	tx2 := db2.Begin()
	defer tx2.Abort()
	if _, err := tx2.Count(rel2); err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats().PartsRecovered; got != after {
		t.Fatalf("scan after preload recovered %d more partitions", got-after)
	}
}

func TestBackgroundRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.BackgroundRecovery = true
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := db.CreateRelation("r", acctSchema)
	tx := db.Begin()
	for i := 0; i < 100; i++ {
		if _, err := tx.Insert(rel, heap.Tuple{int64(i), 0.0, "padpadpadpadpad"}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	db.WaitIdle()
	db2 := crashAndRecover(t, db, cfg)
	defer db2.Close()
	// Without touching anything, the background sweep should restore
	// all partitions.
	deadline := time.Now().Add(5 * time.Second)
	rel2, _ := db2.GetRelation("r")
	want, err := db2.partsOfSegment(rel2, rel2.seg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		resident := 0
		for _, ps := range want {
			if db2.store.Resident(RowID{Segment: rel2.seg, Part: ps.Part}.Partition()) {
				resident++
			}
		}
		if resident == len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background sweep restored %d of %d partitions", resident, len(want))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeadlockDetectedAtFacade(t *testing.T) {
	db := openTestDB(t)
	defer db.Close()
	rel, _ := db.CreateRelation("r", acctSchema)
	tx := db.Begin()
	a, _ := tx.Insert(rel, heap.Tuple{int64(1), 1.0, "a"})
	b, _ := tx.Insert(rel, heap.Tuple{int64(2), 2.0, "b"})
	mustCommit(t, tx)

	t1 := db.Begin()
	t2 := db.Begin()
	if err := t1.Update(rel, a, map[string]any{"balance": 10.0}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(rel, b, map[string]any{"balance": 20.0}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t1.Update(rel, b, map[string]any{"balance": 11.0}) }()
	time.Sleep(20 * time.Millisecond)
	err := t2.Update(rel, a, map[string]any{"balance": 21.0})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got %v, want deadlock", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Victim's effects are gone; winner's persist.
	t3 := db.Begin()
	defer t3.Abort()
	got, _ := t3.Get(rel, a)
	if got[1] != 10.0 {
		t.Fatalf("a.balance = %v", got[1])
	}
	got, _ = t3.Get(rel, b)
	if got[1] != 11.0 {
		t.Fatalf("b.balance = %v", got[1])
	}
}

func TestMediaFailureRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.UpdateThreshold = 32 // several checkpoints happen
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := db.CreateRelation("r", acctSchema)
	if _, err := db.CreateIndex(rel, "by_id", "id", KindTTree, 8); err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{}
	for round := 0; round < 6; round++ {
		tx := db.Begin()
		for i := 0; i < 25; i++ {
			k := int64(round*25 + i)
			if _, err := tx.Insert(rel, heap.Tuple{k, float64(k), "m"}); err != nil {
				t.Fatal(err)
			}
			want[k] = float64(k)
		}
		mustCommit(t, tx)
		db.WaitIdle()
	}
	db.WaitIdle()
	hw := db.Crash()
	cfg.FaultInjector.ClearCrash() // power back on for the rebuild

	// The checkpoint disk set burns down. Every image is gone.
	hw.Ckpt.Fail()
	db2, err := RecoverFromMediaFailure(hw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := db2.GetRelation("r")
	if err != nil {
		t.Fatal(err)
	}
	tx := db2.Begin()
	got := map[int64]float64{}
	if err := tx.Scan(rel2, func(id RowID, tup heap.Tuple) bool {
		got[tup[0].(int64)] = tup[1].(float64)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if len(got) != len(want) {
		t.Fatalf("rebuilt %d rows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %v, want %v", k, got[k], v)
		}
	}
	// The index works after the rebuild.
	idx := rel2.Index("by_id")
	tx2 := db2.Begin()
	hits := 0
	if err := tx2.IndexLookup(idx, int64(77), func(RowID, heap.Tuple) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	if hits != 1 {
		t.Fatalf("index lookup after media rebuild: %d hits", hits)
	}
	// And the rebuilt database is crash-durable again: a regular
	// crash+recover round trip still works.
	tx3 := db2.Begin()
	if _, err := tx3.Insert(rel2, heap.Tuple{int64(999), 9.0, "post"}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx3)
	db2.WaitIdle()
	db3 := crashAndRecover(t, db2, cfg)
	defer db3.Close()
	rel3, _ := db3.GetRelation("r")
	tx4 := db3.Begin()
	defer tx4.Abort()
	n, err := tx4.Count(rel3)
	if err != nil || n != len(want)+1 {
		t.Fatalf("after second crash: %d rows, %v", n, err)
	}
}

// TestConcurrentWorkloadThenCrash runs concurrent writers against
// several relations, crashes, and verifies committed effects survive
// exactly.
func TestConcurrentWorkloadThenCrash(t *testing.T) {
	cfg := testConfig()
	cfg.UpdateThreshold = 48
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rels []*Relation
	for i := 0; i < 3; i++ {
		rel, err := db.CreateRelation(fmt.Sprintf("rel%d", i), acctSchema)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, rel)
	}
	type entry struct {
		rel int
		id  RowID
		val float64
	}
	var mu sync.Mutex
	committed := map[RowID]entry{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				ri := rng.Intn(len(rels))
				tx := db.Begin()
				val := float64(w*1000 + i)
				id, err := tx.Insert(rels[ri], heap.Tuple{int64(w*1000 + i), val, "c"})
				if err != nil {
					_ = tx.Abort()
					continue
				}
				if rng.Intn(5) == 0 {
					_ = tx.Abort() // deliberately abandon some
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				mu.Lock()
				committed[id] = entry{rel: ri, id: id, val: val}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	db.WaitIdle()
	db2 := crashAndRecover(t, db, cfg)
	defer db2.Close()
	total := 0
	for i := range rels {
		rel2, err := db2.GetRelation(fmt.Sprintf("rel%d", i))
		if err != nil {
			t.Fatal(err)
		}
		tx := db2.Begin()
		err = tx.Scan(rel2, func(id RowID, tup heap.Tuple) bool {
			mu.Lock()
			e, ok := committed[id]
			mu.Unlock()
			if !ok {
				t.Errorf("uncommitted/unknown row %v survived", id)
			} else if e.val != tup[1].(float64) {
				t.Errorf("row %v value %v, want %v", id, tup[1], e.val)
			}
			total++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		tx.Abort()
	}
	if total != len(committed) {
		t.Fatalf("recovered %d rows, committed %d", total, len(committed))
	}
}

func TestCreateErrors(t *testing.T) {
	db := openTestDB(t)
	defer db.Close()
	if _, err := db.CreateRelation("bad", heap.Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := db.CreateRelation("r", acctSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("r", acctSchema); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate relation: %v", err)
	}
	rel, _ := db.GetRelation("r")
	if _, err := db.CreateIndex(rel, "i", "ghost", KindTTree, 8); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if _, err := db.CreateIndex(rel, "i", "id", IndexKind(99), 8); err == nil {
		t.Fatal("bad index kind accepted")
	}
	if _, err := db.CreateIndex(rel, "i", "id", KindTTree, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(rel, "i", "id", KindTTree, 8); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate index: %v", err)
	}
	if _, err := db.GetRelation("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing relation: %v", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	db := openTestDB(t)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := db.CreateRelation("late", acctSchema); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
}

func TestUpdateMovesIndexedKey(t *testing.T) {
	db := openTestDB(t)
	defer db.Close()
	rel, _ := db.CreateRelation("r", acctSchema)
	idx, _ := db.CreateIndex(rel, "by_id", "id", KindTTree, 8)
	tx := db.Begin()
	id, _ := tx.Insert(rel, heap.Tuple{int64(5), 1.0, "x"})
	mustCommit(t, tx)

	tx2 := db.Begin()
	if err := tx2.Update(rel, id, map[string]any{"id": int64(500)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)

	tx3 := db.Begin()
	defer tx3.Abort()
	hits := 0
	if err := tx3.IndexLookup(idx, int64(5), func(RowID, heap.Tuple) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatal("old key still indexed")
	}
	if err := tx3.IndexLookup(idx, int64(500), func(RowID, heap.Tuple) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("new key hits = %d", hits)
	}
}

func TestIndexMaintenanceUnderAbort(t *testing.T) {
	db := openTestDB(t)
	defer db.Close()
	rel, _ := db.CreateRelation("r", acctSchema)
	idx, _ := db.CreateIndex(rel, "by_id", "id", KindTTree, 8)
	tx := db.Begin()
	id, _ := tx.Insert(rel, heap.Tuple{int64(7), 1.0, "x"})
	mustCommit(t, tx)

	// Abort an update that would have moved the key and a delete.
	tx2 := db.Begin()
	if err := tx2.Update(rel, id, map[string]any{"id": int64(700)}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	tx3 := db.Begin()
	if err := tx3.Delete(rel, id); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Abort(); err != nil {
		t.Fatal(err)
	}

	tx4 := db.Begin()
	defer tx4.Abort()
	hits := 0
	if err := tx4.IndexLookup(idx, int64(7), func(RowID, heap.Tuple) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("after aborts, key 7 hits = %d", hits)
	}
	if err := tx4.IndexLookup(idx, int64(700), func(RowID, heap.Tuple) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatal("phantom key 700 present after abort")
	}
}
