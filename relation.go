package mmdb

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"mmdb/internal/addr"
	"mmdb/internal/catalog"
	"mmdb/internal/heap"
	"mmdb/internal/linhash"
	"mmdb/internal/lock"
	"mmdb/internal/ttree"
	"mmdb/internal/txn"
)

// Relation is a handle to a stored relation. Every relation occupies
// its own logical segment of fixed-size partitions.
type Relation struct {
	db     *DB
	relID  uint64
	name   string
	seg    addr.SegmentID
	schema heap.Schema

	idxMu   sync.RWMutex
	indexes []*Index
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// ID returns the relation identifier.
func (r *Relation) ID() uint64 { return r.relID }

// Schema returns the relation's schema.
func (r *Relation) Schema() heap.Schema { return r.schema }

// Segment returns the relation's segment ID.
func (r *Relation) Segment() addr.SegmentID { return r.seg }

// Indexes returns the relation's indexes.
func (r *Relation) Indexes() []*Index {
	r.idxMu.RLock()
	defer r.idxMu.RUnlock()
	return append([]*Index(nil), r.indexes...)
}

// Index returns the named index, or nil.
func (r *Relation) Index(name string) *Index {
	r.idxMu.RLock()
	defer r.idxMu.RUnlock()
	for _, i := range r.indexes {
		if i.name == name {
			return i
		}
	}
	return nil
}

func (r *Relation) indexBySeg(seg addr.SegmentID) *Index {
	r.idxMu.RLock()
	defer r.idxMu.RUnlock()
	for _, i := range r.indexes {
		if i.seg == seg {
			return i
		}
	}
	return nil
}

func (r *Relation) addIndex(i *Index) {
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	r.indexes = append(r.indexes, i)
}

func (r *Relation) removeIndex(i *Index) {
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	for j, x := range r.indexes {
		if x == i {
			r.indexes = append(r.indexes[:j], r.indexes[j+1:]...)
			return
		}
	}
}

// Index is a handle to a T-Tree or Modified Linear Hash index on one
// relation column. Index nodes live in the index's own segment.
type Index struct {
	rel    *Relation
	idxID  uint64
	name   string
	seg    addr.SegmentID
	kind   catalog.IndexKind
	col    int
	order  int
	header addr.EntityAddr

	// latch serialises structure readers against in-flight node
	// mutations; transaction-level isolation comes from the per-index
	// writer lock held to commit.
	latch sync.RWMutex
}

// Name returns the index name.
func (i *Index) Name() string { return i.name }

// Kind returns the index structure kind.
func (i *Index) Kind() catalog.IndexKind { return i.kind }

// Column returns the indexed column position.
func (i *Index) Column() int { return i.col }

// Relation returns the indexed relation.
func (i *Index) Relation() *Relation { return i.rel }

// keyOfEntry reads the stored tuple behind an index entry and extracts
// the indexed column (the classic main-memory design: the index stores
// tuple pointers, comparisons read the tuple).
func (i *Index) keyOfEntry(p ttree.Pager, entry uint64) (any, error) {
	raw, err := p.Read(addr.Unpack(entry))
	if err != nil {
		return nil, err
	}
	tup, err := i.rel.schema.Decode(raw)
	if err != nil {
		return nil, err
	}
	return tup[i.col], nil
}

// compareKeys orders two column values of the indexed type.
func (i *Index) compareKeys(a, b any) (int, error) {
	switch i.rel.schema[i.col].Type {
	case heap.Int64:
		x, ok1 := a.(int64)
		y, ok2 := b.(int64)
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("mmdb: index %q wants int64 keys, got %T/%T", i.name, a, b)
		}
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	case heap.Float64:
		x, ok1 := a.(float64)
		y, ok2 := b.(float64)
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("mmdb: index %q wants float64 keys, got %T/%T", i.name, a, b)
		}
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	case heap.String:
		x, ok1 := a.(string)
		y, ok2 := b.(string)
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("mmdb: index %q wants string keys, got %T/%T", i.name, a, b)
		}
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("mmdb: index %q has unsupported key type", i.name)
}

// checkKeyType validates a search key against the indexed column type.
func (i *Index) checkKeyType(v any) error {
	if v == nil {
		return nil // open bound
	}
	want := i.rel.schema[i.col].Type
	ok := false
	switch v.(type) {
	case int64:
		ok = want == heap.Int64
	case float64:
		ok = want == heap.Float64
	case string:
		ok = want == heap.String
	}
	if !ok {
		return fmt.Errorf("mmdb: index %q wants %v keys, got %T", i.name, want, v)
	}
	return nil
}

// hashKey hashes an indexed column value for the linear hash index.
func (i *Index) hashKey(v any) (uint64, error) {
	h := fnv.New64a()
	switch x := v.(type) {
	case int64:
		var b [8]byte
		for k := 0; k < 8; k++ {
			b[k] = byte(x >> (8 * k))
		}
		_, _ = h.Write(b[:])
	case float64:
		bits := math.Float64bits(x)
		var b [8]byte
		for k := 0; k < 8; k++ {
			b[k] = byte(bits >> (8 * k))
		}
		_, _ = h.Write(b[:])
	case string:
		_, _ = h.Write([]byte(x))
	default:
		return 0, fmt.Errorf("mmdb: index %q cannot hash %T", i.name, v)
	}
	return h.Sum64(), nil
}

// tree opens the T-Tree over the given pager.
func (i *Index) tree(p ttree.Pager) (*ttree.Tree, error) {
	cmpE := func(a, b uint64) (int, error) {
		ka, err := i.keyOfEntry(p, a)
		if err != nil {
			return 0, err
		}
		kb, err := i.keyOfEntry(p, b)
		if err != nil {
			return 0, err
		}
		c, err := i.compareKeys(ka, kb)
		if err != nil || c != 0 {
			return c, err
		}
		// Duplicates: total order by address.
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	}
	cmpK := func(key any, e uint64) (int, error) {
		ke, err := i.keyOfEntry(p, e)
		if err != nil {
			return 0, err
		}
		return i.compareKeys(key, ke)
	}
	return ttree.Open(p, i.header, cmpE, cmpK)
}

// table opens the linear hash table over the given pager.
func (i *Index) table(p linhash.Pager) (*linhash.Table, error) {
	hash := func(e uint64) (uint64, error) {
		k, err := i.keyOfEntry(p, e)
		if err != nil {
			return 0, err
		}
		return i.hashKey(k)
	}
	match := func(key any, e uint64) (bool, error) {
		k, err := i.keyOfEntry(p, e)
		if err != nil {
			return false, err
		}
		c, err := i.compareKeys(key, k)
		return c == 0, err
	}
	return linhash.Open(p, i.header, hash, match)
}

// CreateRelation creates a relation with the given schema. DDL is
// serialised and runs in its own transaction.
func (db *DB) CreateRelation(name string, schema heap.Schema) (*Relation, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	db.mu.RLock()
	_, dup := db.rels[name]
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if dup {
		return nil, fmt.Errorf("%w: relation %q", ErrExists, name)
	}

	relID := db.mgr.AllocRelID()
	seg := db.mgr.AllocSegID()
	db.store.EnsureSegment(seg)

	desc := &catalog.RelationDesc{RelID: relID, Name: name, Seg: seg, Schema: schema}
	t := db.mgr.Txns.Begin()
	if err := t.LockRelation(catalog.RelIDRelationCatalog, lock.IX); err != nil {
		_ = t.Abort()
		return nil, err
	}
	da, err := t.InsertEntity(addr.SegRelationCatalog, false, desc.Encode())
	if err != nil {
		_ = t.Abort()
		return nil, err
	}
	if err := t.Commit(); err != nil {
		_ = t.Abort()
		return nil, err
	}

	rel := &Relation{db: db, relID: relID, name: name, seg: seg, schema: append(heap.Schema(nil), schema...)}
	db.mu.Lock()
	db.rels[name] = rel
	db.relByID[relID] = rel
	db.segOwner[seg] = relID
	db.relDescAddr[relID] = da
	db.mu.Unlock()
	return rel, nil
}

// GetRelation returns the named relation.
func (db *DB) GetRelation(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	return rel, nil
}

// Relations lists relation names.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	return out
}

// CreateIndex builds an index of the given kind on one column,
// populating it from existing tuples. order is the node fan-out (0 for
// a default).
func (db *DB) CreateIndex(rel *Relation, name string, column string, kind catalog.IndexKind, order int) (*Index, error) {
	if order <= 0 {
		order = 16
	}
	col, err := rel.schema.ColIndex(column)
	if err != nil {
		return nil, err
	}
	switch kind {
	case catalog.KindTTree, catalog.KindLinHash:
	default:
		return nil, fmt.Errorf("mmdb: unknown index kind %v", kind)
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if rel.Index(name) != nil {
		return nil, fmt.Errorf("%w: index %q", ErrExists, name)
	}

	idxID := db.mgr.AllocIdxID()
	seg := db.mgr.AllocSegID()
	db.store.EnsureSegment(seg)
	idx := &Index{rel: rel, idxID: idxID, name: name, seg: seg, kind: kind, col: col, order: order}

	t := db.mgr.Txns.Begin()
	rollback := func(err error) (*Index, error) {
		_ = t.Abort()
		db.mu.Lock()
		delete(db.idxDescAddr, idxID)
		delete(db.segOwner, seg)
		db.mu.Unlock()
		rel.removeIndex(idx)
		return nil, err
	}
	// Lock out writers of the relation while the index is built.
	if err := t.LockRelation(rel.relID, lock.S); err != nil {
		return rollback(err)
	}
	if err := t.LockRelation(catalog.RelIDIndexCatalog, lock.IX); err != nil {
		return rollback(err)
	}
	desc := &catalog.IndexDesc{IdxID: idxID, Name: name, RelID: rel.relID, Seg: seg, Kind: kind, Column: col, Order: order}
	da, err := t.InsertEntity(addr.SegIndexCatalog, false, desc.Encode())
	if err != nil {
		return rollback(err)
	}
	// Register maps before building: partition allocations during the
	// build look up the descriptor address.
	db.mu.Lock()
	db.idxDescAddr[idxID] = da
	db.segOwner[seg] = rel.relID
	db.mu.Unlock()
	rel.addIndex(idx)

	pager := txn.IndexPager{T: t, Seg: seg}
	switch kind {
	case catalog.KindTTree:
		_, hdr, err := ttree.Create(pager, order, nil, nil)
		if err != nil {
			return rollback(err)
		}
		idx.header = hdr
	case catalog.KindLinHash:
		_, hdr, err := linhash.Create(pager, order, nil, nil)
		if err != nil {
			return rollback(err)
		}
		idx.header = hdr
	}
	// Record the header address in the descriptor.
	desc.Header = idx.header
	raw, err := t.ReadEntity(da)
	if err != nil {
		return rollback(err)
	}
	cur, err := catalog.DecodeIndex(raw)
	if err != nil {
		return rollback(err)
	}
	cur.Header = idx.header
	if err := t.UpdateEntity(da, false, cur.Encode()); err != nil {
		return rollback(err)
	}
	// Populate from existing tuples.
	if err := db.populateIndex(t, idx); err != nil {
		return rollback(err)
	}
	if err := t.Commit(); err != nil {
		return rollback(err)
	}
	return idx, nil
}

// populateIndex inserts every existing tuple of the relation into the
// new index, inside the building transaction.
func (db *DB) populateIndex(t *txn.Txn, idx *Index) error {
	rel := idx.rel
	parts, err := db.partsOfSegment(rel, rel.seg)
	if err != nil {
		return err
	}
	pager := txn.IndexPager{T: t, Seg: idx.seg}
	for _, ps := range parts {
		pid := addr.PartitionID{Segment: rel.seg, Part: ps.Part}
		p, err := db.store.Partition(pid)
		if err != nil {
			return err
		}
		var slots []addr.Slot
		p.Latch()
		p.Slots(func(s addr.Slot, _ []byte) bool {
			slots = append(slots, s)
			return true
		})
		p.Unlatch()
		for _, s := range slots {
			ea := addr.EntityAddr{Segment: rel.seg, Part: ps.Part, Slot: s}
			if err := idx.insertEntry(pager, ea.Pack()); err != nil {
				return err
			}
		}
	}
	return nil
}

// insertEntry adds one entry to the index structure (caller holds the
// index writer lock / build lock and the latch is taken here).
func (idx *Index) insertEntry(pager txn.IndexPager, entry uint64) error {
	idx.latch.Lock()
	defer idx.latch.Unlock()
	switch idx.kind {
	case catalog.KindTTree:
		tr, err := idx.tree(pager)
		if err != nil {
			return err
		}
		return tr.Insert(entry)
	case catalog.KindLinHash:
		tb, err := idx.table(pager)
		if err != nil {
			return err
		}
		return tb.Insert(entry)
	}
	return fmt.Errorf("mmdb: unknown index kind %v", idx.kind)
}

// deleteEntry removes one entry from the index structure.
func (idx *Index) deleteEntry(pager txn.IndexPager, entry uint64) error {
	idx.latch.Lock()
	defer idx.latch.Unlock()
	switch idx.kind {
	case catalog.KindTTree:
		tr, err := idx.tree(pager)
		if err != nil {
			return err
		}
		if err := tr.Delete(entry); err != nil && !errors.Is(err, ttree.ErrNotFound) {
			return err
		}
		return nil
	case catalog.KindLinHash:
		tb, err := idx.table(pager)
		if err != nil {
			return err
		}
		if err := tb.Delete(entry); err != nil && !errors.Is(err, linhash.ErrNotFound) {
			return err
		}
		return nil
	}
	return fmt.Errorf("mmdb: unknown index kind %v", idx.kind)
}
