package mmdb

import "mmdb/internal/heap"

// Schema, Column, Tuple, and the column types are re-exported from the
// storage layer so that the public API is self-contained.

// Schema is an ordered list of relation columns.
type Schema = heap.Schema

// Column describes one relation column.
type Column = heap.Column

// Tuple is a decoded row: one value per schema column (int64, float64,
// or string).
type Tuple = heap.Tuple

// ColType is a column's data type.
type ColType = heap.ColType

// Column types.
const (
	Int64   = heap.Int64
	Float64 = heap.Float64
	String  = heap.String
)
