package mmdb

import (
	"fmt"
	"math/rand"
	"testing"

	"mmdb/internal/heap"
)

// TestSoakSustainedWorkloadWithCrashes drives a sustained mixed
// workload sized to exercise the full machinery end to end — page
// flushes, update-count and age checkpoints, log-window movement,
// archive rolling to tape, change accumulation — with a crash and full
// verification between phases. Skipped with -short.
func TestSoakSustainedWorkloadWithCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := DefaultConfig()
	cfg.PartitionSize = 8 << 10
	cfg.LogPageSize = 1 << 10
	cfg.SLBBlockSize = 1 << 10
	cfg.UpdateThreshold = 80
	cfg.LogWindowPages = 96
	cfg.GracePages = 8
	cfg.DirSize = 4
	cfg.CheckpointTracks = 2048
	cfg.StableBytes = 64 << 20
	cfg.BackgroundRecovery = true
	cfg.ChangeAccumulation = true

	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schema := heap.Schema{
		{Name: "k", Type: heap.Int64},
		{Name: "v", Type: heap.Float64},
		{Name: "pad", Type: heap.String},
	}
	rels := make([]*Relation, 3)
	for i := range rels {
		rels[i], err = db.CreateRelation(fmt.Sprintf("soak%d", i), schema)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateIndex(rels[i], "by_k", "k", KindTTree, 8); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(2026))
	model := make([]map[RowID]int64, 3)
	for i := range model {
		model[i] = map[RowID]int64{}
	}
	rows := make([][]RowID, 3)
	nextKey := int64(0)

	const phases, txnsPerPhase = 4, 400
	for phase := 0; phase < phases; phase++ {
		for i := 0; i < txnsPerPhase; i++ {
			ri := rng.Intn(3)
			rel := rels[ri]
			tx := db.Begin()
			abort := rng.Intn(10) == 0
			type chg struct {
				id  RowID
				k   int64
				del bool
				ins bool
			}
			var chgs []chg
			for op := 0; op < 1+rng.Intn(4); op++ {
				switch c := rng.Intn(10); {
				case c < 5 || len(rows[ri]) == 0:
					k := nextKey
					nextKey++
					id, err := tx.Insert(rel, heap.Tuple{k, float64(k), "padding-data-padding"})
					if err != nil {
						t.Fatal(err)
					}
					chgs = append(chgs, chg{id: id, k: k, ins: true})
				case c < 8:
					id := rows[ri][rng.Intn(len(rows[ri]))]
					if _, ok := model[ri][id]; !ok {
						continue
					}
					already := false
					for _, ch := range chgs {
						if ch.id == id {
							already = true
						}
					}
					if already {
						continue
					}
					k := nextKey
					nextKey++
					if err := tx.Update(rel, id, map[string]any{"k": k}); err != nil {
						t.Fatal(err)
					}
					chgs = append(chgs, chg{id: id, k: k})
				default:
					id := rows[ri][rng.Intn(len(rows[ri]))]
					if _, ok := model[ri][id]; !ok {
						continue
					}
					already := false
					for _, ch := range chgs {
						if ch.id == id {
							already = true
						}
					}
					if already {
						continue
					}
					if err := tx.Delete(rel, id); err != nil {
						t.Fatal(err)
					}
					chgs = append(chgs, chg{id: id, del: true})
				}
			}
			if abort {
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for _, ch := range chgs {
				switch {
				case ch.del:
					delete(model[ri], ch.id)
				case ch.ins:
					model[ri][ch.id] = ch.k
					rows[ri] = append(rows[ri], ch.id)
				default:
					model[ri][ch.id] = ch.k
				}
			}
		}

		db.WaitIdle()
		st := db.Stats()
		db = crashAndRecover(t, db, cfg)
		for i := range rels {
			rels[i], err = db.GetRelation(fmt.Sprintf("soak%d", i))
			if err != nil {
				t.Fatal(err)
			}
		}
		// Verify everything, starting with the full integrity audit.
		if err := db.CheckConsistency(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		for ri, rel := range rels {
			tx := db.Begin()
			got := map[RowID]int64{}
			if err := tx.Scan(rel, func(id RowID, tup heap.Tuple) bool {
				got[id] = tup[0].(int64)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			_ = tx.Abort()
			if len(got) != len(model[ri]) {
				t.Fatalf("phase %d rel %d: %d rows, model %d", phase, ri, len(got), len(model[ri]))
			}
			for id, k := range model[ri] {
				if got[id] != k {
					t.Fatalf("phase %d rel %d row %v: k=%d, want %d", phase, ri, id, got[id], k)
				}
			}
		}
		if phase == phases-1 {
			// Sanity on machinery engagement across the run.
			if st.CkptCompleted == 0 {
				t.Error("soak never completed a checkpoint")
			}
			if st.PagesFlushed == 0 {
				t.Error("soak never flushed a log page")
			}
			if st.RecordsAccumulated == 0 {
				t.Error("change accumulation never engaged")
			}
		}
	}
	_ = db.Close()
}
